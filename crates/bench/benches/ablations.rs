//! Ablation micro-benchmarks for the design choices DESIGN.md calls out:
//! register-level-parallel dequantization vs scalar, and the naive
//! double-quant scheme vs QoQ's progressive order.

use qserve_bench::timing::{black_box, Criterion};
use qserve_bench::{bench_group, bench_main};
use qserve_core::progressive::{NaiveDoubleQuant, ProgressiveWeight};
use qserve_kernels::rlp::{dequant_scalar, dequant_sub_after_mul, splat4};
use qserve_tensor::rng::TensorRng;

/// RLP dequantization (2 register ops / 4 lanes) vs scalar (per element) —
/// the emulation itself shows the op-count advantage.
fn bench_rlp_vs_scalar(c: &mut Criterion) {
    let mut rng = TensorRng::seed(1);
    let codes: Vec<u8> = (0..4096).map(|_| rng.index(16) as u8).collect();
    let scale = 13u8;
    let zero = 6u8;
    let zs = u32::from(zero) * u32::from(scale);
    let neg_zs = splat4((zs as u8 as i8).wrapping_neg() as u8);

    c.bench_function("dequant_rlp_4096", |b| {
        b.iter(|| {
            let mut acc = 0i32;
            for quad in codes.chunks_exact(4) {
                let reg = u32::from(quad[0])
                    | (u32::from(quad[1]) << 8)
                    | (u32::from(quad[2]) << 16)
                    | (u32::from(quad[3]) << 24);
                let dq = dequant_sub_after_mul(black_box(reg), scale, neg_zs);
                acc = acc.wrapping_add(dq as i32);
            }
            black_box(acc)
        })
    });
    c.bench_function("dequant_scalar_4096", |b| {
        b.iter(|| {
            let mut acc = 0i32;
            for &q in &codes {
                acc = acc.wrapping_add(dequant_scalar(black_box(q), zero, scale));
            }
            black_box(acc)
        })
    });
}

/// Progressive quantization vs the naive VSQuant/DoubleQuant order: similar
/// offline cost, but only one admits INT8 intermediates.
fn bench_two_level_schemes(c: &mut Criterion) {
    let mut rng = TensorRng::seed(2);
    let w = rng.gaussian(128, 1024, 0.05);
    c.bench_function("two_level_progressive_128x1024", |b| {
        b.iter(|| black_box(ProgressiveWeight::quantize(&w, 128)))
    });
    c.bench_function("two_level_naive_doublequant_128x1024", |b| {
        b.iter(|| black_box(NaiveDoubleQuant::quantize(&w, 128)))
    });
}

bench_group!(benches, bench_rlp_vs_scalar, bench_two_level_schemes);
bench_main!(benches);
