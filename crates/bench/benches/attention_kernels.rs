//! Micro-benchmarks of the emulated KV attention kernels (the Table 1
//! subjects) and the fp16 magic-bias dequantization trick.

use qserve_bench::timing::{black_box, BenchmarkId, Criterion};
use qserve_bench::{bench_group, bench_main};
use qserve_core::kv_quant::KvPrecision;
use qserve_kernels::attention::{
    decode_attention_fp16, magic_bias_dequant, naive_dequant, QuantizedKvHead,
};
use qserve_tensor::fp16::F16;
use qserve_tensor::rng::TensorRng;

fn filled_cache(seq: usize, d: usize, p: KvPrecision) -> QuantizedKvHead {
    let mut rng = TensorRng::seed(1);
    let mut cache = QuantizedKvHead::new(p);
    for _ in 0..seq {
        let k: Vec<f32> = (0..d).map(|_| rng.normal(1.0)).collect();
        let v: Vec<f32> = (0..d).map(|_| rng.normal(1.0)).collect();
        cache.append(&k, &v);
    }
    cache
}

fn bench_decode_attention(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_attention");
    let d = 128;
    let mut rng = TensorRng::seed(2);
    let q: Vec<f32> = (0..d).map(|_| rng.normal(1.0)).collect();
    for seq in [128usize, 512, 1536] {
        for (name, p) in [("kv4", KvPrecision::Int4), ("kv8", KvPrecision::Int8)] {
            let cache = filled_cache(seq, d, p);
            group.bench_with_input(BenchmarkId::new(name, seq), &seq, |b, _| {
                b.iter(|| black_box(decode_attention_fp16(&q, &cache)))
            });
        }
    }
    group.finish();
}

fn bench_dequant_tricks(c: &mut Criterion) {
    let s16 = F16::from_f32(0.0371);
    c.bench_function("magic_bias_dequant_4096", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..4096u32 {
                let q = (i % 16) as u8;
                let z = ((i / 16) % 16) as u8;
                acc += magic_bias_dequant(black_box(q), black_box(z), s16).to_f32();
            }
            black_box(acc)
        })
    });
    c.bench_function("naive_dequant_4096", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..4096u32 {
                let q = (i % 16) as u8;
                let z = ((i / 16) % 16) as u8;
                acc += naive_dequant(black_box(q), black_box(z), 0.0371);
            }
            black_box(acc)
        })
    });
}

bench_group!(benches, bench_decode_attention, bench_dequant_tricks);
bench_main!(benches);
