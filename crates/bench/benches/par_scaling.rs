//! Thread-scaling baseline for the deterministic work-stealing pool.
//!
//! Runs the same cluster trace at 1, 2 and 4 pool threads (per-cluster
//! pools via [`Cluster::with_threads`], so one process can compare widths)
//! and asserts the reports are **identical** across thread counts — the
//! pool's whole contract is speedup without a single bit of drift. A W4A8
//! GEMM arm records kernel throughput at the global pool's width (the
//! global pool is pinned by `QSERVE_THREADS` at first use, so the kernel
//! measurement is labeled with whatever width the environment selected).
//!
//! Wall-clock numbers land in `results/BENCH_par_scaling.json` so perf
//! regressions diff like goldens. On a single-core host the parallel arms
//! measure pool overhead, not speedup — the JSON is a baseline to compare
//! across commits on the *same* host, not a portable claim. Set
//! `QSERVE_BENCH_FAST=1` for a CI-sized smoke run.

use qserve_bench::timing::{black_box, fast_mode, write_json_report, Criterion};
use qserve_core::progressive::PerChannelW4;
use qserve_gpusim::GpuSpec;
use qserve_kernels::{gemm_w4a8_per_channel, quantize_activations_int8};
use qserve_model::ModelConfig;
use qserve_serve::cluster::{Cluster, LeastOutstanding};
use qserve_serve::report::ClusterReport;
use qserve_serve::request::WorkloadSpec;
use qserve_serve::scheduler::{MemoryAware, Reservation, SchedOptions};
use qserve_serve::{ServingEngine, SystemConfig};
use qserve_tensor::{pool, rng::TensorRng};

/// Requests in the cluster trace (`QSERVE_BENCH_FAST` shrinks it 20×).
const REQUESTS: usize = 100_000;
/// Offered load, requests per second — overload, so windows stay busy.
const RATE_RPS: f64 = 2500.0;
/// Trace seed (matches the scheduling sweeps' seed).
const SEED: u64 = 20240603;
/// Pool widths the cluster arm sweeps.
const THREADS: [usize; 3] = [1, 2, 4];

fn fleet(threads: usize) -> Cluster {
    let a100 = ServingEngine::new(
        GpuSpec::a100(),
        ModelConfig::llama2_7b(),
        SystemConfig::QServePerChannel,
    )
    .expect("A100 serves Llama-2-7B");
    Cluster::heterogeneous(vec![a100; 4], Box::new(LeastOutstanding)).with_threads(threads)
}

fn main() {
    let n = if fast_mode() { REQUESTS / 20 } else { REQUESTS };
    let spec = WorkloadSpec::production(n, RATE_RPS, SEED);
    let mut c = Criterion::default();
    let mut metrics: Vec<(String, f64)> = vec![("requests".to_string(), n as f64)];

    let mut baseline: Option<(f64, ClusterReport)> = None;
    for &t in &THREADS {
        let mut cluster = fleet(t);
        let (ns, report) = c.bench_once(&format!("par_scaling/cluster/threads_{t}"), || {
            cluster
                .serve_paged(
                    &spec,
                    || Box::new(MemoryAware::default()) as Box<dyn qserve_serve::SchedulingPolicy>,
                    Reservation::OnDemand,
                    SchedOptions::default(),
                )
                .expect("cluster serves")
        });
        metrics.push((format!("cluster_threads_{t}_wall_s"), ns / 1e9));
        metrics.push((
            format!("cluster_threads_{t}_wall_tok_per_s"),
            report.generated_tokens as f64 / (ns / 1e9),
        ));
        match &baseline {
            None => baseline = Some((ns, report)),
            Some((base_ns, base)) => {
                // The determinism contract, re-proved on the benchmarked
                // trace itself (don't `assert_eq!`: a failure would
                // Debug-print hundreds of thousands of request ids).
                assert!(
                    *base == report,
                    "reports diverged between thread counts (1 vs {t})"
                );
                metrics.push((format!("cluster_threads_{t}_speedup"), base_ns / ns));
            }
        }
    }

    // Kernel arm at the global pool's width.
    let width = pool::global().threads();
    let (m, kn, kk) = if fast_mode() { (8usize, 128usize, 256usize) } else { (64, 2048, 2048) };
    let mut rng = TensorRng::seed(42);
    let w = rng.gaussian(kn, kk, 0.05);
    let pw = PerChannelW4::quantize(&w);
    let qx = quantize_activations_int8(&rng.gaussian(m, kk, 1.0));
    c.bench_function(&format!("par_scaling/gemm_w4a8/{m}x{kn}x{kk}/threads_{width}"), |b| {
        b.iter(|| black_box(gemm_w4a8_per_channel(&qx, &pw)))
    });
    let gemm_ns = c.results().last().expect("gemm result recorded").median_ns;
    metrics.push((format!("gemm_threads_{width}_wall_s"), gemm_ns / 1e9));
    metrics.push((
        format!("gemm_threads_{width}_gmacs_per_s"),
        (m * kn * kk) as f64 / gemm_ns,
    ));

    let path =
        write_json_report("par_scaling", c.results(), &metrics).expect("write BENCH_par_scaling.json");
    println!("baseline: {}", path.display());
}
