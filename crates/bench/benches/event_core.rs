//! Event-driven vs step-driven serving core on the same trace.
//!
//! The two arms run the identical workload on the identical fleet and must
//! produce bit-identical `ClusterReport`s (the equivalence the `props!`
//! oracle proves in miniature); the only difference is the driver. The
//! step-driven reference pays an O(replicas) min-clock scan per step, an
//! O(residents) outstanding-work scan per replica per arrival and a fresh
//! snapshot/scratch allocation per decision, so its cost grows with
//! `arrivals × backlog`; the event core replaces all three with a binary
//! heap and incremental counters, staying O(events × log replicas).
//!
//! The trace is deliberately an *overload* regime (offered load ≈ 6.5× the
//! fleet's ~615 req/s service rate) so a deep backlog persists for the whole
//! run — the regime that made million-request traces unreachable for the
//! step driver. Each arm runs exactly once (`bench_once`): a single run
//! takes seconds to minutes, so the calibrated multi-sample loop would
//! multiply a minutes-long baseline ~12×. Set `QSERVE_BENCH_FAST=1` for a
//! CI-sized trace where relative numbers do not matter.

use qserve_bench::timing::{fast_mode, write_json_report, Criterion};
use qserve_serve::cluster::{Cluster, LeastOutstanding};
use qserve_serve::request::WorkloadSpec;
use qserve_serve::scheduler::{MemoryAware, Reservation, SchedOptions};
use qserve_serve::{ServingEngine, SystemConfig};
use qserve_gpusim::GpuSpec;
use qserve_model::ModelConfig;

/// Requests in the benchmark trace (the full run; `QSERVE_BENCH_FAST`
/// shrinks it 10×).
const REQUESTS: usize = 200_000;
/// Offered load, requests per second — ~6.5× the 4×A100 service rate.
const RATE_RPS: f64 = 4000.0;
/// Trace seed (matches the scheduling sweeps' seed).
const SEED: u64 = 20240603;

fn fleet() -> Cluster {
    let a100 = ServingEngine::new(
        GpuSpec::a100(),
        ModelConfig::llama2_7b(),
        SystemConfig::QServePerChannel,
    )
    .expect("A100 serves Llama-2-7B");
    Cluster::heterogeneous(vec![a100; 4], Box::new(LeastOutstanding))
}

fn main() {
    let n = if fast_mode() { REQUESTS / 10 } else { REQUESTS };
    let spec = WorkloadSpec::production(n, RATE_RPS, SEED);
    let mut cluster = fleet();
    let serve_args = || {
        (
            || Box::new(MemoryAware::default()) as Box<dyn qserve_serve::SchedulingPolicy>,
            Reservation::OnDemand,
            SchedOptions::default(),
        )
    };

    let mut c = Criterion::default();
    let (event_ns, event) = c.bench_once(&format!("serve_core/event/{n}"), || {
        let (mk, res, opts) = serve_args();
        cluster.serve_paged(&spec, mk, res, opts).expect("event core serves")
    });
    let (step_ns, step) = c.bench_once(&format!("serve_core/step/{n}"), || {
        let (mk, res, opts) = serve_args();
        cluster
            .serve_paged_step_reference(&spec, mk, res, opts)
            .expect("step reference serves")
    });
    // Equivalence re-proved on the benchmarked trace itself (don't
    // `assert_eq!`: a failure would Debug-print hundreds of thousands of
    // request ids).
    assert!(event == step, "event core and step reference reports diverged");
    println!(
        "serve_core: {} requests, {} completed, {} preemptions",
        n, event.completed, event.preemptions
    );
    println!("speedup: {:.1}x (event-driven over step-driven)", step_ns / event_ns);

    // Machine-readable baseline so perf regressions diff like goldens:
    // wall-clock per arm plus wall-clock token throughput (generated
    // simulation tokens per real second spent simulating them).
    let wall_tok_per_s = |tokens: usize, ns: f64| tokens as f64 / (ns / 1e9);
    let metrics = vec![
        ("requests".to_string(), n as f64),
        ("event_wall_s".to_string(), event_ns / 1e9),
        ("step_wall_s".to_string(), step_ns / 1e9),
        ("speedup_event_over_step".to_string(), step_ns / event_ns),
        (
            "event_wall_tok_per_s".to_string(),
            wall_tok_per_s(event.generated_tokens, event_ns),
        ),
        (
            "step_wall_tok_per_s".to_string(),
            wall_tok_per_s(step.generated_tokens, step_ns),
        ),
    ];
    let path = write_json_report("event_core", c.results(), &metrics)
        .expect("write BENCH_event_core.json");
    println!("baseline: {}", path.display());
}
