//! Micro-benchmarks of the emulated W4A8 GEMM kernels — the Rust analogue
//! of the paper's kernel-level comparison (Figure 18's subjects).

use qserve_bench::timing::{black_box, BenchmarkId, Criterion};
use qserve_bench::{bench_group, bench_main};
use qserve_core::progressive::{PerChannelW4, ProgressiveWeight};
use qserve_kernels::{gemm_w4a8_per_channel, gemm_w4a8_per_group, gemm_w8a8, quantize_activations_int8};
use qserve_quant::rounding::round_clamp;
use qserve_tensor::rng::TensorRng;

fn bench_gemms(c: &mut Criterion) {
    let mut group = c.benchmark_group("w4a8_gemm");
    let (n, k) = (256usize, 512usize);
    let mut rng = TensorRng::seed(42);
    let w = rng.gaussian(n, k, 0.05);
    let pw_group = ProgressiveWeight::quantize(&w, 128);
    let pw_chan = PerChannelW4::quantize(&w);
    // W8A8 reference operands.
    let mut w8_codes = vec![0i8; n * k];
    let mut w8_scales = vec![0.0f32; n];
    for j in 0..n {
        let am = w.row(j).iter().fold(0.0f32, |a, v| a.max(v.abs()));
        w8_scales[j] = am / 127.0;
        for (p, &v) in w.row(j).iter().enumerate() {
            w8_codes[j * k + p] = round_clamp(v / w8_scales[j], -127, 127) as i8;
        }
    }

    for m in [8usize, 32, 128] {
        let x = rng.gaussian(m, k, 1.0);
        let qx = quantize_activations_int8(&x);
        group.bench_with_input(BenchmarkId::new("per_group", m), &m, |b, _| {
            b.iter(|| black_box(gemm_w4a8_per_group(&qx, &pw_group)))
        });
        group.bench_with_input(BenchmarkId::new("per_channel", m), &m, |b, _| {
            b.iter(|| black_box(gemm_w4a8_per_channel(&qx, &pw_chan)))
        });
        group.bench_with_input(BenchmarkId::new("w8a8", m), &m, |b, _| {
            b.iter(|| black_box(gemm_w8a8(&qx, &w8_codes, &w8_scales, n)))
        });
    }
    group.finish();
}

fn bench_activation_quant(c: &mut Criterion) {
    let mut rng = TensorRng::seed(7);
    let x = rng.gaussian(64, 4096, 1.0);
    c.bench_function("quantize_activations_int8_64x4096", |b| {
        b.iter(|| black_box(quantize_activations_int8(&x)))
    });
}

bench_group!(benches, bench_gemms, bench_activation_quant);
bench_main!(benches);
