//! Benchmarks of the QoQ quantization pipeline itself (offline cost:
//! progressive quantization, rotation, searches).

use qserve_bench::timing::{black_box, Criterion};
use qserve_bench::{bench_group, bench_main};
use qserve_core::pipeline::{quantize_block, QoqConfig, WeightGranularity};
use qserve_core::progressive::ProgressiveWeight;
use qserve_core::rotation::hadamard;
use qserve_kernels::reorder::ReorderedWeight;
use qserve_model::synth::SyntheticModel;
use qserve_tensor::rng::TensorRng;

fn bench_progressive(c: &mut Criterion) {
    let mut rng = TensorRng::seed(3);
    let w = rng.gaussian(256, 1024, 0.05);
    c.bench_function("progressive_quantize_256x1024_g128", |b| {
        b.iter(|| black_box(ProgressiveWeight::quantize(&w, 128)))
    });
    let pw = ProgressiveWeight::quantize(&w, 128);
    c.bench_function("progressive_dequantize_256x1024", |b| {
        b.iter(|| black_box(pw.dequantize()))
    });
}

fn bench_block_pipeline(c: &mut Criterion) {
    let model = SyntheticModel::small(1);
    let calib = {
        let mut rng = TensorRng::seed(4);
        rng.gaussian(32, model.config.hidden, 1.0)
    };
    let cfg = QoqConfig {
        weight_granularity: WeightGranularity::PerGroup(32),
        ..QoqConfig::w4a8kv4_g128()
    };
    c.bench_function("qoq_quantize_block_full_recipe", |b| {
        b.iter(|| black_box(quantize_block(&model.blocks[0], &calib, &cfg)))
    });
    let rtn = QoqConfig::rtn(WeightGranularity::PerGroup(32));
    c.bench_function("qoq_quantize_block_rtn", |b| {
        b.iter(|| black_box(quantize_block(&model.blocks[0], &calib, &rtn)))
    });
}

fn bench_transforms(c: &mut Criterion) {
    c.bench_function("hadamard_256", |b| b.iter(|| black_box(hadamard(256))));
    let mut rng = TensorRng::seed(5);
    let codes: Vec<u8> = (0..256 * 1024).map(|_| rng.index(16) as u8).collect();
    c.bench_function("compute_aware_reorder_256x1024", |b| {
        b.iter(|| black_box(ReorderedWeight::from_codes(&codes, 256, 1024)))
    });
}

bench_group!(benches, bench_progressive, bench_block_pipeline, bench_transforms);
bench_main!(benches);
