//! Fixture-based UI tests: every file under `tests/fixtures/` is linted
//! under a pseudo-path and its rendered output must match the sibling
//! `.expected` file byte for byte.
//!
//! Fixture grammar:
//! - Rust fixtures start with `//@ path: <workspace-relative path>`;
//!   TOML fixtures start with `#@ path: ...`. The directive line stays in
//!   the source handed to the linter, so reported line numbers match the
//!   fixture file itself.
//! - `<fixture>.expected` holds the sorted `file:line:col: lint: message`
//!   lines followed by one trailer line
//!   `-- suppressed: <S> by <A> allow comment(s)`.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use qserve_lint::lint_file_str;

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn pseudo_path(src: &str, fixture: &Path) -> String {
    let first = src.lines().next().unwrap_or("");
    let rest = first
        .strip_prefix("//@ path:")
        .or_else(|| first.strip_prefix("#@ path:"))
        .unwrap_or_else(|| {
            panic!(
                "{} must start with `//@ path:` or `#@ path:`",
                fixture.display()
            )
        });
    rest.trim().to_string()
}

fn render(rel: &str, src: &str) -> String {
    let outcome = lint_file_str(rel, src);
    let mut lines: Vec<String> = outcome.findings.iter().map(|f| f.to_string()).collect();
    lines.sort();
    let mut out = String::new();
    for l in &lines {
        writeln!(out, "{}", l).unwrap();
    }
    writeln!(
        out,
        "-- suppressed: {} by {} allow comment(s)",
        outcome.suppressed.len(),
        outcome.allow_comments
    )
    .unwrap();
    out
}

#[test]
fn fixtures_match_expected_output() {
    let dir = fixture_dir();
    let mut fixtures: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing fixture dir {}: {}", dir.display(), e))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().map_or(true, |x| x != "expected"))
        .collect();
    fixtures.sort();
    assert!(!fixtures.is_empty(), "no fixtures found in {}", dir.display());

    let mut failures = String::new();
    for fixture in &fixtures {
        let src = fs::read_to_string(fixture).unwrap();
        let rel = pseudo_path(&src, fixture);
        let expected_path = PathBuf::from(format!("{}.expected", fixture.display()));
        let expected = fs::read_to_string(&expected_path).unwrap_or_else(|e| {
            panic!("missing {}: {}", expected_path.display(), e)
        });
        let actual = render(&rel, &src);
        if actual != expected {
            writeln!(
                failures,
                "== {} (as {})\n-- expected --\n{}-- actual --\n{}",
                fixture.file_name().unwrap().to_string_lossy(),
                rel,
                expected,
                actual
            )
            .unwrap();
        }
    }
    assert!(failures.is_empty(), "fixture mismatches:\n{}", failures);
}

#[test]
fn every_lint_has_a_firing_fixture() {
    // Guards against adding a rule without fixture coverage: each public
    // lint name must appear in at least one .expected file.
    let dir = fixture_dir();
    let mut all_expected = String::new();
    for e in fs::read_dir(&dir).unwrap() {
        let p = e.unwrap().path();
        if p.extension().is_some_and(|x| x == "expected") {
            all_expected.push_str(&fs::read_to_string(&p).unwrap());
        }
    }
    for lint in qserve_lint::LINTS {
        assert!(
            all_expected.contains(&format!(": {}: ", lint)),
            "no fixture exercises lint `{}`",
            lint
        );
    }
}
