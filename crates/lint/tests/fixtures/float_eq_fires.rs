//@ path: crates/tensor/src/widget.rs
pub fn is_zero(x: f32) -> bool {
    x == 0.0
}

pub fn differs(x: f64) -> bool {
    x != -1.5
}
