//@ path: crates/serve/src/host_tier.rs
pub fn drain(capacity_pages: usize, used_pages: usize) -> usize {
    capacity_pages - used_pages
}

pub fn pack(page_count: u64) -> usize {
    page_count as usize
}
