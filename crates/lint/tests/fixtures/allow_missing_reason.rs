//@ path: crates/core/src/widget.rs
pub fn widget() {
    // lint: allow(hygiene)
    todo!()
}
