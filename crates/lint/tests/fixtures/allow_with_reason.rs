//@ path: crates/core/src/widget.rs
pub fn widget() {
    // lint: allow(hygiene) -- fixture demonstrates an own-line allow
    todo!()
}
