//@ path: crates/serve/src/widget.rs
use std::sync::Mutex;
pub fn tally(total: &Mutex<u64>, n: &std::sync::atomic::AtomicU64) {
    *total.lock().unwrap() += 1;
    n.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}
