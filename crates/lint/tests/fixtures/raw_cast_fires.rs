//@ path: crates/gpusim/src/widget.rs
pub fn pack(token_count: u64) -> usize {
    token_count as usize
}
