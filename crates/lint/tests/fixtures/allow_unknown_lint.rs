//@ path: crates/core/src/widget.rs
pub fn widget() {
    // lint: allow(no-such-lint) -- misguided
    todo!()
}
