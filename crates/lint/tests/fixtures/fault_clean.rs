//@ path: crates/serve/src/fault.rs
pub fn remaining(horizon_events: usize, fired_events: usize) -> usize {
    horizon_events.checked_sub(fired_events).expect("fired past the horizon")
}

pub fn narrow(page_count: u64) -> usize {
    // lint: allow(raw-cast) -- fixture demonstrates a scoped suppression
    page_count as usize
}
