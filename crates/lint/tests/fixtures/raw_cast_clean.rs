//@ path: crates/gpusim/src/widget.rs
pub fn pack(token_count: u64) -> usize {
    usize::try_from(token_count).expect("token count fits usize")
}
