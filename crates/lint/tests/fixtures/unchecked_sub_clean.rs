//@ path: crates/serve/src/scheduler.rs
pub fn drain(total_pages: usize, free_pages: usize) -> usize {
    total_pages.checked_sub(free_pages).expect("ledger drift")
}

pub fn take(free_pages: usize, n: usize) -> usize {
    free_pages.saturating_sub(n)
}
