//@ path: crates/serve/src/widget.rs
use std::collections::HashMap;

pub fn total(pages: &HashMap<u64, usize>) -> usize {
    pages.values().sum()
}

pub fn dump(index: HashMap<u64, u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for k in index.keys() {
        out.push(*k);
    }
    for v in &index {
        out.push(*v.1);
    }
    out
}
