//@ path: crates/bench/src/timing.rs
pub fn stamp() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}
