//@ path: crates/serve/src/scheduler.rs
pub fn drain(total_pages: usize, free_pages: usize) -> usize {
    total_pages - free_pages
}

pub fn take(mut free_pages: usize, n: usize) -> usize {
    free_pages -= n;
    free_pages
}
