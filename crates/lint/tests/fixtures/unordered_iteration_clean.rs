//@ path: crates/serve/src/widget.rs
use std::collections::BTreeMap;

pub fn total(pages: &BTreeMap<u64, usize>) -> usize {
    pages.values().sum()
}
