//@ path: crates/serve/src/control.rs
pub fn backlog(outstanding_tokens: usize, drained_tokens: usize) -> usize {
    outstanding_tokens - drained_tokens
}

pub fn widen(page_count: u64) -> usize {
    page_count as usize
}
