//@ path: crates/core/src/widget.rs
pub fn widget() {
    todo!()
}

pub fn probe(x: u32) -> u32 {
    dbg!(x)
}
