//@ path: crates/quant/src/widget.rs
use std::collections::HashMap;

pub fn total(pages: &HashMap<u64, usize>) -> usize {
    let used_pages: usize = pages.values().sum();
    let free_pages = 2usize;
    used_pages - free_pages
}
