//@ path: crates/serve/src/widget.rs
// lint: allow(nondeterministic-parallel) -- pure memo cache, not a cross-thread accumulator
struct MemoCell(std::sync::Mutex<u64>);
