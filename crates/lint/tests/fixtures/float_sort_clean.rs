//@ path: crates/tensor/src/widget.rs
pub fn sort_latencies(v: &mut [f64]) {
    v.sort_by(f64::total_cmp);
}

pub fn maybe_order(a: f64, b: f64) -> Option<std::cmp::Ordering> {
    a.partial_cmp(&b)
}

pub fn sort_lenient(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}
