//@ path: crates/serve/src/widget.rs
pub fn stamp() {
    let t0 = std::time::Instant::now();
    let _ = t0;
    let _home = std::env::var("HOME");
}
