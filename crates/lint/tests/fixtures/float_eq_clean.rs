//@ path: crates/tensor/src/widget.rs
pub fn is_zero(x: f32) -> bool {
    x.abs().to_bits() == 0
}

pub fn is_unit(x: f32) -> bool {
    x.to_bits() == 1.0f32.to_bits()
}
