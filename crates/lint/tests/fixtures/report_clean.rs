//@ path: crates/serve/src/report.rs
pub fn swap_volume(moved_pages: usize, page_bytes: u64) -> u64 {
    u64::try_from(moved_pages).expect("page count fits u64") * page_bytes
}

pub fn still_waiting(routed: usize, finished: usize) -> usize {
    routed.checked_sub(finished).expect("finished more than was routed")
}
