//@ path: crates/tensor/src/widget.rs
pub fn sort_latencies(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn sort_ratios(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN ratios"));
}
