//@ path: crates/core/src/widget.rs
pub fn widget() -> u32 {
    41 + 1
}
