//@ path: crates/tensor/src/pool.rs
use std::sync::{Condvar, Mutex};
pub fn claim(next: &std::sync::atomic::AtomicUsize) -> usize {
    next.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}
