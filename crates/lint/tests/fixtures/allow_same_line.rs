//@ path: crates/tensor/src/widget.rs
pub fn is_zero(x: f32) -> bool {
    x == 0.0 // lint: allow(float-eq) -- fixture demonstrates a trailing allow
}
