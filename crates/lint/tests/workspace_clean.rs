//! Self-check: the live workspace must carry zero unsuppressed findings.
//! This is the same contract `ci.sh` gates on, enforced from the test
//! suite so `cargo test` alone catches a regression.

use std::path::Path;

use qserve_lint::lint_workspace;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
}

#[test]
fn live_tree_is_lint_clean() {
    let report = lint_workspace(workspace_root()).expect("workspace walk");
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "the tree violates its own determinism/accounting contract:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn walker_covers_the_workspace() {
    // Guards against the walker silently skipping the source tree (a clean
    // report over zero files would be meaningless).
    let report = lint_workspace(workspace_root()).expect("workspace walk");
    assert!(
        report.files_scanned > 60,
        "only {} files scanned; walker is skipping too much",
        report.files_scanned
    );
}

#[test]
fn every_allow_carries_a_reason() {
    // The suppression ledger itself: every allow in the live tree parsed
    // with a non-empty reason (malformed ones surface as findings above).
    let report = lint_workspace(workspace_root()).expect("workspace walk");
    for s in &report.suppressed {
        assert!(
            !s.reason.is_empty(),
            "suppressed finding without a reason: {}",
            s.finding
        );
    }
}
