//! Token-level lint rules over the [`crate::lexer`] stream.
//!
//! Every rule is a linear scan with a little local context — no AST, no
//! type information. Where a rule needs "is this a map?" or "is this a
//! counter?", it uses the conventions this workspace already follows
//! (declared types on bindings/fields, counter-style identifier names), and
//! the false-positive escape hatch is an allow comment with a mandatory
//! reason.

use crate::lexer::{lex, Tok, TokKind};
use crate::{apply_allows, parse_directives, FileOutcome, FileScope, Finding};

/// Methods whose call on a `HashMap`/`HashSet` observes iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Integer targets for the raw-cast rule; `as f64` widening for reporting
/// is allowed, truncating integer casts on counters are not.
const INT_TYPES: &[&str] =
    &["usize", "u64", "u32", "u16", "u8", "isize", "i64", "i32", "i16", "i8", "u128", "i128"];

const HYGIENE_MACROS: &[&str] = &["todo", "unimplemented", "dbg"];

/// Identifier names that denote page/token accounting state. The ledger and
/// cost-model rules only fire when an operand mentions one of these.
fn is_counter_ident(name: &str) -> bool {
    let n = name.to_ascii_lowercase();
    n.contains("page")
        || n.contains("token")
        || n.contains("refcount")
        || n.contains("ref_count")
        || matches!(n.as_str(), "used" | "free" | "filled" | "remaining" | "outstanding" | "refs")
}

/// Lints one Rust source file under the given scope flags.
pub fn lint_rust(rel: &str, src: &str, scope: &FileScope) -> FileOutcome {
    let lexed = lex(src);
    let toks = &lexed.toks;
    let (allows, mut findings) = parse_directives(&lexed.comments, rel, &lexed.toks);

    hygiene(rel, toks, &mut findings);
    float_eq(rel, toks, &mut findings);
    float_sort(rel, toks, &mut findings);
    if scope.wall_clock {
        wall_clock(rel, toks, &mut findings);
        nondeterministic_parallel(rel, toks, &mut findings);
    }
    if scope.sim {
        unordered_iteration(rel, toks, &mut findings);
    }
    if scope.accounting {
        unchecked_sub(rel, toks, &mut findings);
        raw_cast(rel, toks, &mut findings);
    }

    apply_allows(findings, allows)
}

fn text(toks: &[Tok], i: isize) -> &str {
    if i < 0 {
        return "";
    }
    toks.get(i as usize).map(|t| t.text.as_str()).unwrap_or("")
}

fn kind(toks: &[Tok], i: isize) -> Option<TokKind> {
    if i < 0 {
        return None;
    }
    toks.get(i as usize).map(|t| t.kind)
}

fn finding(rel: &str, tok: &Tok, lint: &'static str, message: String) -> Finding {
    Finding { file: rel.to_string(), line: tok.line, col: tok.col, lint, message }
}

// ---------------------------------------------------------------------------
// hygiene: todo! / unimplemented! / dbg! anywhere
// ---------------------------------------------------------------------------

fn hygiene(rel: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Ident
            && HYGIENE_MACROS.contains(&toks[i].text.as_str())
            && text(toks, i as isize + 1) == "!"
        {
            out.push(finding(
                rel,
                &toks[i],
                "hygiene",
                format!("`{}!` must not ship; finish the implementation or delete it", toks[i].text),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// float-eq: == / != against a float literal (to_bits comparisons are the
// sanctioned identity form and never involve a float literal)
// ---------------------------------------------------------------------------

fn float_eq(rel: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let op = toks[i].text.as_str();
        if toks[i].kind != TokKind::Punct || (op != "==" && op != "!=") {
            continue;
        }
        let i = i as isize;
        // `1.0f32.to_bits()` is an integer expression — the sanctioned exact
        // form — even though it starts with a float literal.
        let bits_of = |j: isize| {
            kind(toks, j) == Some(TokKind::Float)
                && text(toks, j + 1) == "."
                && text(toks, j + 2) == "to_bits"
        };
        let left = kind(toks, i - 1) == Some(TokKind::Float);
        let right = (kind(toks, i + 1) == Some(TokKind::Float) && !bits_of(i + 1))
            || (text(toks, i + 1) == "-" && kind(toks, i + 2) == Some(TokKind::Float));
        if left || right {
            out.push(finding(
                rel,
                &toks[i as usize],
                "float-eq",
                format!(
                    "float `{}` comparison; compare `.to_bits()` or restructure to exact integers",
                    op
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// float-sort: `.partial_cmp(..).unwrap()` / `.expect(..)` in comparator
// position — panics on NaN mid-sort; `f64::total_cmp` is the sanctioned
// total order (explicit `unwrap_or(Ordering::..)` fallbacks stay legal)
// ---------------------------------------------------------------------------

fn float_sort(rel: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident
            || toks[i].text != "partial_cmp"
            || text(toks, i as isize - 1) != "."
            || text(toks, i as isize + 1) != "("
        {
            continue;
        }
        // Depth-match the argument list, then look for `.unwrap(` /
        // `.expect(` immediately on the comparison's result.
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if text(toks, j as isize + 1) == "."
            && kind(toks, j as isize + 2) == Some(TokKind::Ident)
            && matches!(text(toks, j as isize + 2), "unwrap" | "expect")
            && text(toks, j as isize + 3) == "("
        {
            out.push(finding(
                rel,
                &toks[i],
                "float-sort",
                format!(
                    "`partial_cmp(..).{}(..)` panics on NaN mid-comparison; use `f64::total_cmp` for a deterministic total order",
                    text(toks, j as isize + 2)
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// wall-clock: std::env / std::thread paths and the Instant / SystemTime
// types are off-limits outside qserve_bench::timing
// ---------------------------------------------------------------------------

fn wall_clock(rel: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let i = i as isize;
        match t.text.as_str() {
            "std" if text(toks, i + 1) == "::" => {
                let seg = text(toks, i + 2);
                if seg == "env" || seg == "thread" {
                    out.push(finding(
                        rel,
                        t,
                        "wall-clock",
                        format!(
                            "`std::{}` is forbidden in simulation code; only `qserve_bench::timing` may touch the process environment",
                            seg
                        ),
                    ));
                }
            }
            "Instant" | "SystemTime" => {
                out.push(finding(
                    rel,
                    t,
                    "wall-clock",
                    format!(
                        "wall-clock type `{}` is forbidden in simulation code; only `qserve_bench::timing` measures real time",
                        t.text
                    ),
                ));
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// nondeterministic-parallel: Mutex/RwLock shared state and atomic
// read-modify-write calls outside the pool's merge machinery — cross-thread
// accumulation in scheduling-dependent order breaks bit-identical reports
// ---------------------------------------------------------------------------

/// Atomic read-modify-write methods whose result (or visible side-effect
/// order) depends on thread interleaving.
const ATOMIC_RMW: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

fn nondeterministic_parallel(rel: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let at = i as isize;
        match t.text.as_str() {
            "Mutex" | "RwLock" => {
                out.push(finding(
                    rel,
                    t,
                    "nondeterministic-parallel",
                    format!(
                        "`{}` shared state outside `qserve_tensor::pool`; cross-thread accumulation order is scheduling-dependent — return per-task results and let `par_map` merge them in submission order",
                        t.text
                    ),
                ));
            }
            _ if ATOMIC_RMW.contains(&t.text.as_str())
                && text(toks, at - 1) == "."
                && text(toks, at + 1) == "(" =>
            {
                out.push(finding(
                    rel,
                    t,
                    "nondeterministic-parallel",
                    format!(
                        "atomic `.{}()` outside `qserve_tensor::pool`; interleaving-dependent read-modify-write breaks bit-identical parallel reports — return per-task results and let `par_map` merge them in submission order",
                        t.text
                    ),
                ));
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// unordered-iteration: iterating a HashMap/HashSet-typed binding in the
// simulation crates
// ---------------------------------------------------------------------------

/// Collects identifiers declared with a `HashMap`/`HashSet` type in this
/// file: `name: [std::collections::]HashMap<..>` (fields, params, lets) and
/// `name = [std::collections::]HashMap::new()`.
fn hash_typed_names(toks: &[Tok]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident
            || (toks[i].text != "HashMap" && toks[i].text != "HashSet")
        {
            continue;
        }
        // Walk back over a `std :: collections ::`-style path prefix.
        let mut j = i as isize - 1;
        while text(toks, j) == "::" && kind(toks, j - 1) == Some(TokKind::Ident) {
            j -= 2;
        }
        while matches!(text(toks, j), "&" | "mut") {
            j -= 1;
        }
        if matches!(text(toks, j), ":" | "=") && kind(toks, j - 1) == Some(TokKind::Ident) {
            let name = &toks[(j - 1) as usize].text;
            if !names.iter().any(|n| n == name) {
                names.push(name.clone());
            }
        }
    }
    names
}

fn unordered_iteration(rel: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    let names = hash_typed_names(toks);
    if names.is_empty() {
        return;
    }
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || !names.iter().any(|n| *n == toks[i].text) {
            continue;
        }
        let at = i as isize;
        // `name.iter()` / `.keys()` / `.values()` / `.drain()` / ...
        if text(toks, at + 1) == "."
            && kind(toks, at + 2) == Some(TokKind::Ident)
            && ITER_METHODS.contains(&text(toks, at + 2))
            && text(toks, at + 3) == "("
        {
            out.push(finding(
                rel,
                &toks[(at + 2) as usize],
                "unordered-iteration",
                format!(
                    "`.{}()` on `{}` (HashMap/HashSet) iterates in unspecified order; use BTreeMap/BTreeSet or sort first",
                    text(toks, at + 2),
                    toks[i].text
                ),
            ));
            continue;
        }
        // `for pat in [&][mut] [self.]name {`
        if text(toks, at + 1) == "{" {
            let mut j = at - 1;
            if text(toks, j) == "." && text(toks, j - 1) == "self" {
                j -= 2;
            }
            if text(toks, j) == "mut" {
                j -= 1;
            }
            if text(toks, j) == "&" {
                j -= 1;
            }
            if text(toks, j) == "in" {
                out.push(finding(
                    rel,
                    &toks[i],
                    "unordered-iteration",
                    format!(
                        "`for .. in` over `{}` (HashMap/HashSet) iterates in unspecified order; use BTreeMap/BTreeSet or sort first",
                        toks[i].text
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// unchecked-sub / raw-cast: page/token counter arithmetic in ledger and
// cost-model files
// ---------------------------------------------------------------------------

/// Walks one postfix chain backward from `j` (`self.a.b(c)[d]` style),
/// collecting every identifier that appears in it, including inside bracket
/// groups. Stops at the first token that cannot extend the chain.
fn chain_idents_back(toks: &[Tok], mut j: isize, out: &mut Vec<String>) {
    loop {
        if j < 0 {
            return;
        }
        let t = &toks[j as usize];
        match t.text.as_str() {
            ")" | "]" => {
                let mut depth = 0i32;
                loop {
                    if j < 0 {
                        return;
                    }
                    let u = &toks[j as usize];
                    match u.text.as_str() {
                        ")" | "]" => depth += 1,
                        "(" | "[" => {
                            depth -= 1;
                            if depth == 0 {
                                j -= 1;
                                break;
                            }
                        }
                        _ => {
                            if u.kind == TokKind::Ident {
                                out.push(u.text.clone());
                            }
                        }
                    }
                    j -= 1;
                }
            }
            "." | "::" => j -= 1,
            _ if t.kind == TokKind::Ident => {
                out.push(t.text.clone());
                j -= 1;
            }
            _ => return,
        }
    }
}

/// Walks one operand forward from `j`, skipping prefix operators, then
/// collecting the identifiers of a single postfix chain.
fn chain_idents_fwd(toks: &[Tok], mut j: isize, out: &mut Vec<String>) {
    while matches!(text(toks, j), "&" | "*" | "-" | "!" | "mut") {
        j += 1;
    }
    loop {
        if j >= toks.len() as isize {
            return;
        }
        let t = &toks[j as usize];
        match t.text.as_str() {
            "(" | "[" => {
                let mut depth = 0i32;
                loop {
                    if j >= toks.len() as isize {
                        return;
                    }
                    let u = &toks[j as usize];
                    match u.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {
                            if u.kind == TokKind::Ident {
                                out.push(u.text.clone());
                            }
                        }
                    }
                    j += 1;
                }
            }
            "." | "::" | "?" => j += 1,
            _ if t.kind == TokKind::Ident => {
                out.push(t.text.clone());
                j += 1;
            }
            _ => return,
        }
    }
}

/// Does the token end an expression (so a following `-` is binary)?
fn ends_expr(t: &Tok) -> bool {
    matches!(t.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
        || matches!(t.text.as_str(), ")" | "]")
}

fn operand_hits_counter(toks: &[Tok], i: isize, both_sides: bool) -> bool {
    let mut idents = Vec::new();
    chain_idents_back(toks, i - 1, &mut idents);
    if both_sides {
        chain_idents_fwd(toks, i + 1, &mut idents);
    }
    idents.iter().any(|n| is_counter_ident(n))
}

fn unchecked_sub(rel: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Punct {
            continue;
        }
        let at = i as isize;
        let op = t.text.as_str();
        if op == "-" {
            // Only binary minus; a unary negation is not a ledger subtraction.
            if i == 0 || !ends_expr(&toks[i - 1]) {
                continue;
            }
        } else if op != "-=" {
            continue;
        }
        if operand_hits_counter(toks, at, true) {
            out.push(finding(
                rel,
                t,
                "unchecked-sub",
                format!(
                    "raw `{}` on a page/token counter; use `checked_sub`/`saturating_sub` so ledger drift fails loudly",
                    op
                ),
            ));
        }
    }
}

fn raw_cast(rel: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || toks[i].text != "as" {
            continue;
        }
        let at = i as isize;
        let ty = text(toks, at + 1);
        if !INT_TYPES.contains(&ty) {
            continue;
        }
        if operand_hits_counter(toks, at, false) {
            out.push(finding(
                rel,
                &toks[i],
                "raw-cast",
                format!(
                    "raw `as {ty}` cast on a page/token counter; use `{ty}::try_from` or `div_ceil` to keep accounting exact"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope_all() -> FileScope {
        FileScope { sim: true, wall_clock: true, accounting: true }
    }

    fn lints_of(src: &str) -> Vec<(&'static str, u32, u32)> {
        lint_rust("crates/serve/src/x.rs", src, &scope_all())
            .findings
            .into_iter()
            .map(|f| (f.lint, f.line, f.col))
            .collect()
    }

    #[test]
    fn hygiene_fires_on_macros_only() {
        let got = lints_of("fn todo() {}\nfn f() { todo!(); }\nlet s = \"dbg!\";\n");
        assert_eq!(got, vec![("hygiene", 2, 10)]);
    }

    #[test]
    fn float_eq_fires_on_literal_comparison() {
        let got = lints_of("fn f(x: f64) -> bool { x == 0.0 }");
        assert_eq!(got, vec![("float-eq", 1, 26)]);
        assert!(lints_of("fn f(x: f64) -> bool { x.abs().to_bits() == 0 }").is_empty());
        assert_eq!(lints_of("fn f(x: f64) -> bool { x != -1.5 }").len(), 1);
    }

    #[test]
    fn float_sort_fires_on_unwrapped_comparators() {
        let got =
            lints_of("fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }");
        assert_eq!(got, vec![("float-sort", 1, 42)]);
        let got = lints_of(
            "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).expect(\"no NaN\")); }",
        );
        assert_eq!(got, vec![("float-sort", 1, 42)]);
        // A parenthesized argument must not fool the depth matcher.
        let got = lints_of("let o = x.partial_cmp(&(y + z.min(1.0))).unwrap();");
        assert_eq!(got, vec![("float-sort", 1, 11)]);
    }

    #[test]
    fn float_sort_leaves_sanctioned_forms_alone() {
        // total_cmp is the fix; a bare partial_cmp (e.g. propagated as an
        // Option) and an explicit Ordering fallback both stay legal.
        assert!(lints_of("fn f(v: &mut [f64]) { v.sort_by(f64::total_cmp); }").is_empty());
        assert!(lints_of("let o = a.partial_cmp(&b);").is_empty());
        assert!(lints_of(
            "v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));"
        )
        .is_empty());
    }

    #[test]
    fn wall_clock_catches_paths_and_types() {
        let got = lints_of("use std::time::Instant;\nfn f() { let _ = std::env::var(\"X\"); }\n");
        assert_eq!(got, vec![("wall-clock", 1, 16), ("wall-clock", 2, 18)]);
        // std::thread_local is a different identifier and must not fire.
        assert!(lints_of("std::thread_local! { static X: u32 = 0; }")
            .iter()
            .all(|(l, _, _)| *l != "wall-clock"));
    }

    #[test]
    fn nondeterministic_parallel_catches_locks_and_rmw() {
        let got = lints_of("use std::sync::Mutex;\nstatic TOTAL: Mutex<u64> = Mutex::new(0);\n");
        assert_eq!(
            got,
            vec![
                ("nondeterministic-parallel", 1, 16),
                ("nondeterministic-parallel", 2, 15),
                ("nondeterministic-parallel", 2, 28),
            ]
        );
        let got = lints_of("fn f(n: &AtomicU64) { n.fetch_add(1, Ordering::Relaxed); }");
        assert_eq!(got, vec![("nondeterministic-parallel", 1, 25)]);
        let got = lints_of("let _ = cell.compare_exchange(0, 1, AcqRel, Acquire);");
        assert_eq!(got, vec![("nondeterministic-parallel", 1, 14)]);
    }

    #[test]
    fn nondeterministic_parallel_leaves_ordinary_code_alone() {
        // Plain loads/stores and unrelated identifiers never fire.
        assert!(lints_of("let x = flag.load(Ordering::Relaxed);").is_empty());
        assert!(lints_of("let fetch_add = 3; let y = fetch_add + 1;").is_empty());
        // The pool itself is out of scope entirely.
        let scope = FileScope { sim: false, wall_clock: false, accounting: false };
        let src = "use std::sync::Mutex;\nlet n = next.fetch_add(1, Ordering::Relaxed);\n";
        assert!(lint_rust("crates/tensor/src/pool.rs", src, &scope).findings.is_empty());
    }

    #[test]
    fn unordered_iteration_tracks_declared_maps() {
        let src = "use std::collections::HashMap;\n\
                   struct S { pinned: HashMap<u64, usize> }\n\
                   impl S { fn f(&self) { for (k, v) in &self.pinned { let _ = (k, v); } } }\n";
        let got = lints_of(src);
        assert_eq!(got, vec![("unordered-iteration", 3, 44)]);
        // Lookups are fine; Vec iteration is fine.
        assert!(lints_of("fn f(v: Vec<u32>) { for x in &v { let _ = x; } }").is_empty());
        assert!(lints_of(
            "use std::collections::HashMap;\nfn f(m: &HashMap<u64, u32>) { let _ = m.get(&1); }"
        )
        .is_empty());
    }

    #[test]
    fn unordered_iteration_catches_method_calls() {
        let src = "let mut seen = std::collections::HashSet::new();\nseen.insert(1);\nlet n = seen.iter().count();\n";
        let got = lints_of(src);
        assert_eq!(got, vec![("unordered-iteration", 3, 14)]);
    }

    #[test]
    fn unchecked_sub_needs_a_counter_operand() {
        assert_eq!(lints_of("self.free_pages -= pages;"), vec![("unchecked-sub", 1, 17)]);
        assert_eq!(
            lints_of("let u = self.total_pages - self.free_pages;"),
            vec![("unchecked-sub", 1, 26)]
        );
        // Wall-time deltas and index math on non-counters stay clean.
        assert!(lints_of("let dt = clock_s - arrival_s;").is_empty());
        assert!(lints_of("let last = xs.len() - 1;").is_empty());
        // Unary minus is not a subtraction.
        assert!(lints_of("let x = -tokens;").is_empty());
    }

    #[test]
    fn raw_cast_flags_truncating_counter_casts_only() {
        assert_eq!(lints_of("let p = max_tokens as usize;"), vec![("raw-cast", 1, 20)]);
        assert_eq!(
            lints_of("let p = (total / seq.max(1) as u64) as usize;"),
            Vec::<(&str, u32, u32)>::new()
        );
        assert_eq!(lints_of("let p = (free_pages * 2) as u32;"), vec![("raw-cast", 1, 26)]);
        // Widening to f64 for reporting is allowed.
        assert!(lints_of("let r = generated_tokens as f64 / clock_s;").is_empty());
        // try_from is the sanctioned form.
        assert!(lints_of("let p = usize::try_from(max_tokens).expect(\"fits\");").is_empty());
    }

    #[test]
    fn scope_gates_rules() {
        let off = FileScope { sim: false, wall_clock: false, accounting: false };
        let src = "use std::collections::HashMap;\nlet m: HashMap<u32,u32> = HashMap::new();\nfor x in &m {}\nlet y = free_pages - 1;\n";
        assert!(lint_rust("crates/core/src/x.rs", src, &off).findings.is_empty());
    }
}
