//! The `qserve-lint` binary: lints the workspace tree and exits non-zero on
//! any unsuppressed finding.
//!
//! ```text
//! qserve-lint [--json] [--root <dir>]
//! ```
//!
//! Findings print one per line as `file:line:col: lint-name: message`. The
//! summary line reports the suppression count so allowlist growth stays
//! visible in CI logs. `--json` emits the same data as a single JSON object
//! for tooling.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use qserve_lint::{lint_workspace, WorkspaceReport};

fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn print_json(report: &WorkspaceReport) {
    let findings: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            format!(
                "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"lint\":\"{}\",\"message\":\"{}\"}}",
                json_escape(&f.file),
                f.line,
                f.col,
                f.lint,
                json_escape(&f.message)
            )
        })
        .collect();
    let suppressed: Vec<String> = report
        .suppressed
        .iter()
        .map(|s| {
            format!(
                "{{\"file\":\"{}\",\"line\":{},\"lint\":\"{}\",\"reason\":\"{}\"}}",
                json_escape(&s.finding.file),
                s.finding.line,
                s.finding.lint,
                json_escape(&s.reason)
            )
        })
        .collect();
    println!(
        "{{\"findings\":[{}],\"suppressed\":[{}],\"allow_comments\":{},\"files_scanned\":{}}}",
        findings.join(","),
        suppressed.join(","),
        report.allow_comments,
        report.files_scanned
    );
}

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("qserve-lint: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: qserve-lint [--json] [--root <dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("qserve-lint: unknown argument `{}`", other);
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("qserve-lint: cannot read current dir: {}", e);
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("qserve-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("qserve-lint: walk failed: {}", e);
            return ExitCode::from(2);
        }
    };
    if json {
        print_json(&report);
    } else {
        for f in &report.findings {
            println!("{}", f);
        }
        println!(
            "qserve-lint: {} unsuppressed finding(s), {} suppressed by {} allow comment(s), {} files scanned",
            report.findings.len(),
            report.suppressed.len(),
            report.allow_comments,
            report.files_scanned
        );
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
