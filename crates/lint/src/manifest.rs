//! `manifest-policy`: every dependency in every `Cargo.toml` must be a
//! workspace-internal `path` dependency.
//!
//! The build environment has no crates.io access, so a version, git, or
//! registry dependency anywhere in the workspace is a build break waiting
//! for the first `cargo` invocation. A tiny line-level TOML scan is enough:
//! section headers, `key = value` entries, and `[dependencies.<name>]`
//! dotted tables. Allow directives use the TOML comment leader:
//! `# lint: allow(manifest-policy) -- <reason>`.

use crate::lexer::Comment;
use crate::{apply_allows, parse_directives_on, FileOutcome, Finding};

/// Is `section` one that declares dependencies (`[dependencies]`,
/// `[dev-dependencies]`, `[target.'cfg(..)'.dependencies]`,
/// `[workspace.dependencies]`, ...)?
fn is_dep_section(section: &str) -> bool {
    const KINDS: &[&str] = &["dependencies", "dev-dependencies", "build-dependencies"];
    KINDS.iter().any(|k| section == *k || section.ends_with(&format!(".{}", k)))
}

/// Does a dep section name like `dependencies.serde` name a single
/// dependency as a dotted table? Returns the dependency name.
fn dotted_dep_name(section: &str) -> Option<&str> {
    let (head, tail) = section.rsplit_once('.')?;
    if is_dep_section(head) {
        Some(tail)
    } else {
        None
    }
}

/// Splits a TOML line into (content, optional comment), honoring `#` inside
/// basic strings.
fn split_comment(line: &str) -> (&str, Option<(usize, &str)>) {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return (&line[..i], Some((i, &line[i..]))),
            _ => {}
        }
    }
    (line, None)
}

/// Resolves `dep_path` against the manifest's directory and reports whether
/// it stays inside the workspace root.
fn path_stays_inside(manifest_rel: &str, dep_path: &str) -> bool {
    if dep_path.starts_with('/') || dep_path.contains(':') {
        return false;
    }
    let dir = manifest_rel.rsplit_once('/').map(|(d, _)| d).unwrap_or("");
    let mut depth: i32 = if dir.is_empty() { 0 } else { dir.split('/').count() as i32 };
    for comp in dep_path.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => depth += 1,
        }
    }
    true
}

/// One dependency entry, however it was spelled.
struct DepEntry {
    name: String,
    line: u32,
    col: u32,
    has_path: bool,
    path_value: Option<String>,
    forbidden_key: Option<String>,
}

impl DepEntry {
    fn check(&self, rel: &str, out: &mut Vec<Finding>) {
        let push = |out: &mut Vec<Finding>, message: String| {
            out.push(Finding {
                file: rel.to_string(),
                line: self.line,
                col: self.col,
                lint: "manifest-policy",
                message,
            });
        };
        if let Some(k) = &self.forbidden_key {
            push(
                out,
                format!(
                    "dependency `{}` uses `{}`; only workspace-internal `path` dependencies are allowed",
                    self.name, k
                ),
            );
            return;
        }
        if !self.has_path {
            push(
                out,
                format!(
                    "dependency `{}` must be a workspace-internal `path` dependency",
                    self.name
                ),
            );
            return;
        }
        if let Some(p) = &self.path_value {
            if !path_stays_inside(rel, p) {
                push(
                    out,
                    format!("dependency `{}` path `{}` leaves the workspace", self.name, p),
                );
            }
        }
    }
}

/// Parses the inline-table keys of `name = { ... }` into a [`DepEntry`].
fn inline_table_entry(name: &str, body: &str, line: u32, col: u32) -> DepEntry {
    let mut entry = DepEntry {
        name: name.to_string(),
        line,
        col,
        has_path: false,
        path_value: None,
        forbidden_key: None,
    };
    let inner = body.trim_start_matches('{').trim_end_matches('}');
    for kv in inner.split(',') {
        let Some((k, v)) = kv.split_once('=') else { continue };
        let k = k.trim();
        let v = v.trim().trim_matches('"');
        match k {
            "path" => {
                entry.has_path = true;
                entry.path_value = Some(v.to_string());
            }
            "git" | "registry" | "workspace" => {
                entry.forbidden_key.get_or_insert_with(|| k.to_string());
            }
            _ => {}
        }
    }
    entry
}

/// Lints one `Cargo.toml`.
pub fn lint_manifest(rel: &str, src: &str) -> FileOutcome {
    let mut findings: Vec<Finding> = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();
    let mut content_lines: Vec<u32> = Vec::new();
    let mut section = String::new();
    // A `[dependencies.<name>]` dotted table being accumulated.
    let mut dotted: Option<DepEntry> = None;

    let finalize = |d: Option<DepEntry>, findings: &mut Vec<Finding>| {
        if let Some(d) = d {
            d.check(rel, findings);
        }
    };

    for (idx, raw) in src.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let (content, comment) = split_comment(raw);
        let trimmed = content.trim();
        if let Some((at, text)) = comment {
            comments.push(Comment {
                text: text.to_string(),
                line: line_no,
                col: (at + 1) as u32,
                own_line: trimmed.is_empty(),
            });
        }
        if trimmed.is_empty() {
            continue;
        }
        content_lines.push(line_no);
        if trimmed.starts_with('[') {
            finalize(dotted.take(), &mut findings);
            section = trimmed.trim_matches(['[', ']']).trim().to_string();
            if let Some(name) = dotted_dep_name(&section) {
                let col = (content.find('[').unwrap_or(0) + 1) as u32;
                dotted = Some(DepEntry {
                    name: name.to_string(),
                    line: line_no,
                    col,
                    has_path: false,
                    path_value: None,
                    forbidden_key: None,
                });
            }
            continue;
        }
        let Some((key, value)) = content.split_once('=') else { continue };
        let name = key.trim();
        let value = value.trim();
        let col = (content.len() - content.trim_start().len() + 1) as u32;
        if let Some(d) = dotted.as_mut() {
            match name {
                "path" => {
                    d.has_path = true;
                    d.path_value = Some(value.trim_matches('"').to_string());
                }
                "git" | "registry" | "workspace" => {
                    d.forbidden_key.get_or_insert_with(|| name.to_string());
                }
                _ => {}
            }
            continue;
        }
        if !is_dep_section(&section) {
            continue;
        }
        let entry = if value.starts_with('{') {
            inline_table_entry(name, value, line_no, col)
        } else {
            // `foo = "1.0"` (or any non-table form): not a path dependency.
            DepEntry {
                name: name.to_string(),
                line: line_no,
                col,
                has_path: false,
                path_value: None,
                forbidden_key: None,
            }
        };
        entry.check(rel, &mut findings);
    }
    finalize(dotted.take(), &mut findings);

    let (allows, mut malformed) = parse_directives_on(&comments, rel, &content_lines);
    findings.append(&mut malformed);
    apply_allows(findings, allows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lints_of(src: &str) -> Vec<(u32, u32, String)> {
        lint_manifest("crates/demo/Cargo.toml", src)
            .findings
            .into_iter()
            .map(|f| (f.line, f.col, f.message))
            .collect()
    }

    #[test]
    fn path_deps_are_clean() {
        let src = "[package]\nname = \"x\"\n\n[dependencies]\nqserve-tensor = { path = \"../tensor\" }\n";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn version_and_git_deps_fire() {
        let src = "[dependencies]\nserde = \"1.0\"\nrand = { git = \"https://x\" }\nlibc = { version = \"0.2\" }\n";
        let got = lints_of(src);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0, 2);
        assert!(got[1].2.contains("`git`"));
        assert!(got[2].2.contains("path"));
    }

    #[test]
    fn escaping_path_fires() {
        let src = "[dependencies]\nevil = { path = \"../../../outside\" }\n";
        let got = lints_of(src);
        assert_eq!(got.len(), 1);
        assert!(got[0].2.contains("leaves the workspace"));
    }

    #[test]
    fn dotted_table_needs_path() {
        let src = "[dependencies.serde]\nversion = \"1.0\"\n\n[dependencies.ok]\npath = \"../ok\"\n";
        let got = lints_of(src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 1);
    }

    #[test]
    fn dev_and_target_sections_are_covered() {
        let src = "[dev-dependencies]\nquick = \"1\"\n\n[target.'cfg(unix)'.dependencies]\nnix = \"0.1\"\n";
        assert_eq!(lints_of(src).len(), 2);
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "[dependencies]\nserde = \"1.0\" # lint: allow(manifest-policy) -- vendored locally, build verified offline\n";
        let out = lint_manifest("crates/demo/Cargo.toml", src);
        assert!(out.findings.is_empty());
        assert_eq!(out.suppressed.len(), 1);
    }

    #[test]
    fn non_dep_sections_ignore_version_keys() {
        let src = "[package]\nversion = \"0.1.0\"\nedition = \"2021\"\n\n[[bench]]\nname = \"x\"\nharness = false\n";
        assert!(lints_of(src).is_empty());
    }
}
