//! `qserve-lint` — in-repo static analysis enforcing the determinism and
//! accounting contracts this reproduction rests on.
//!
//! The golden CSVs are byte-diffed, the cost models are exact-integer, the
//! page ledgers never subtract unchecked, and the workspace never grows a
//! crates.io dependency. Those contracts used to be enforced by review
//! vigilance; this crate makes them machine-checked. It is dependency-free
//! by construction: a hand-rolled lexer (see [`lexer`]), token-level rules
//! (see [`rules`]), and a line-level manifest checker (see [`manifest`]).
//!
//! Rules:
//!
//! - `manifest-policy` — every `[dependencies]`/`[dev-dependencies]` entry
//!   in every `Cargo.toml` must be a workspace-internal `path` dependency.
//! - `unordered-iteration` — `HashMap`/`HashSet` iteration in the
//!   simulation crates (`serve`, `gpusim`, `bench`); unordered iteration is
//!   how bit-identical goldens die.
//! - `wall-clock` — `std::time::{Instant, SystemTime}`, `std::env`, and
//!   `std::thread` outside `qserve_bench::timing` and the
//!   `qserve_tensor::pool` worker pool (the one sanctioned home for OS
//!   threads; everything else forks through it).
//! - `nondeterministic-parallel` — `Mutex`/`RwLock` shared state and atomic
//!   read-modify-write calls (`fetch_add`, `compare_exchange`, ..) outside
//!   the pool's own merge machinery; accumulating across threads in
//!   scheduling-dependent order is how bit-identical parallel reports die.
//!   Deterministic parallelism routes results through
//!   `qserve_tensor::pool::Pool::par_map`, which merges in submission
//!   order.
//! - `unchecked-sub` / `raw-cast` — raw `-`/`-=` and truncating `as` casts
//!   on page/token counter expressions in ledger and cost-model files.
//! - `float-eq` — `==`/`!=` against float literals anywhere (`to_bits`
//!   identity comparisons are the sanctioned form).
//! - `float-sort` — `partial_cmp(..).unwrap()`/`.expect(..)` anywhere: a
//!   NaN panics mid-comparison and partial orders are how float sorts go
//!   non-deterministic (`f64::total_cmp` is the sanctioned form).
//! - `hygiene` — `todo!`, `unimplemented!`, `dbg!` anywhere.
//!
//! A finding is suppressed by an allow comment with a mandatory reason:
//!
//! ```text
//! self.clock = wall();  // lint: allow(wall-clock) -- replay harness, not simulation
//! ```
//!
//! An own-line allow comment targets the next code line. A missing or empty
//! reason is itself a finding (`malformed-allow`) and cannot be suppressed.

pub mod lexer;
pub mod manifest;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

use lexer::{Comment, Tok};

/// Lint names that may appear in an allow directive.
pub const LINTS: &[&str] = &[
    "manifest-policy",
    "unordered-iteration",
    "wall-clock",
    "nondeterministic-parallel",
    "unchecked-sub",
    "raw-cast",
    "float-eq",
    "float-sort",
    "hygiene",
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub lint: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: {}: {}", self.file, self.line, self.col, self.lint, self.message)
    }
}

/// One parsed `lint: allow(..) -- reason` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    pub lint: String,
    pub reason: String,
    /// The code line this directive suppresses.
    pub target_line: u32,
}

/// A finding that an allow directive suppressed, with its recorded reason.
#[derive(Debug, Clone)]
pub struct Suppressed {
    pub finding: Finding,
    pub reason: String,
}

/// The outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    pub findings: Vec<Finding>,
    pub suppressed: Vec<Suppressed>,
    pub allow_comments: usize,
}

/// Which rule families apply to a Rust file, derived from its path.
#[derive(Debug, Clone, Copy)]
pub struct FileScope {
    /// Simulation crate: unordered-iteration applies.
    pub sim: bool,
    /// Wall-clock isolation applies (everything but `qserve_bench::timing`,
    /// `qserve_tensor::pool` and this lint crate itself). The same flag
    /// gates `nondeterministic-parallel`: the files allowed to spawn
    /// threads are exactly the files allowed to synchronize them.
    pub wall_clock: bool,
    /// Ledger / cost-model file: accounting rules apply.
    pub accounting: bool,
}

/// How a workspace-relative path is linted.
#[derive(Debug, Clone, Copy)]
pub enum FileKind {
    Rust(FileScope),
    Manifest,
}

/// Classifies a workspace-relative path (`/`-separated). Returns `None` for
/// files the linter does not look at.
pub fn classify(rel: &str) -> Option<FileKind> {
    if rel.ends_with("Cargo.toml") {
        return Some(FileKind::Manifest);
    }
    if !rel.ends_with(".rs") {
        return None;
    }
    let sim = rel.starts_with("crates/serve/")
        || rel.starts_with("crates/gpusim/")
        || rel.starts_with("crates/bench/");
    let wall_clock = !rel.starts_with("crates/lint/")
        && rel != "crates/bench/src/timing.rs"
        && rel != "crates/tensor/src/pool.rs";
    let accounting = matches!(
        rel,
        "crates/serve/src/scheduler.rs"
            | "crates/serve/src/kv_cache.rs"
            | "crates/serve/src/memory.rs"
            | "crates/serve/src/engine.rs"
            | "crates/serve/src/host_tier.rs"
            | "crates/serve/src/fault.rs"
            | "crates/serve/src/control.rs"
            | "crates/serve/src/report.rs"
    ) || rel.starts_with("crates/gpusim/src/");
    Some(FileKind::Rust(FileScope { sim, wall_clock, accounting }))
}

/// Lints one file given as a string, classified by its (pseudo-)path.
/// This is the entry point the fixture tests drive.
pub fn lint_file_str(rel: &str, src: &str) -> FileOutcome {
    match classify(rel) {
        Some(FileKind::Rust(scope)) => rules::lint_rust(rel, src, &scope),
        Some(FileKind::Manifest) => manifest::lint_manifest(rel, src),
        None => FileOutcome::default(),
    }
}

/// Parses allow directives out of a comment stream. Returns the directives
/// plus `malformed-allow` findings for directives that do not follow the
/// grammar `lint: allow(<name>) -- <non-empty reason>`.
///
/// `toks` provides the code lines: an own-line directive targets the next
/// line that holds any token.
pub fn parse_directives(
    comments: &[Comment],
    rel: &str,
    toks: &[Tok],
) -> (Vec<Allow>, Vec<Finding>) {
    let content_lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
    parse_directives_on(comments, rel, &content_lines)
}

/// As [`parse_directives`], over an explicit sorted list of content lines
/// (the manifest checker has no token stream).
pub fn parse_directives_on(
    comments: &[Comment],
    rel: &str,
    content_lines: &[u32],
) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        let body = c.text.trim_start_matches(['/', '#', '!', '*']).trim_start();
        let Some(rest) = body.strip_prefix("lint:") else { continue };
        let malformed = |msg: &str| Finding {
            file: rel.to_string(),
            line: c.line,
            col: c.col,
            lint: "malformed-allow",
            message: msg.to_string(),
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            findings.push(malformed(
                "allow directive must look like `lint: allow(<name>) -- <reason>`",
            ));
            continue;
        };
        let Some(close) = rest.find(')') else {
            findings.push(malformed("unclosed `allow(`"));
            continue;
        };
        let name = rest[..close].trim();
        if !LINTS.contains(&name) {
            findings.push(malformed(&format!("unknown lint `{}` in allow directive", name)));
            continue;
        }
        let tail = rest[close + 1..].trim_start();
        let reason = match tail.strip_prefix("--") {
            Some(r) => r.trim(),
            None => {
                findings.push(malformed(
                    "allow directive is missing its `-- <reason>`; a reason is mandatory",
                ));
                continue;
            }
        };
        if reason.is_empty() {
            findings.push(malformed("allow reason must not be empty"));
            continue;
        }
        let target_line = if c.own_line {
            match content_lines.iter().copied().filter(|&l| l > c.line).min() {
                Some(l) => l,
                None => continue, // dangling directive at EOF: suppresses nothing
            }
        } else {
            c.line
        };
        allows.push(Allow { lint: name.to_string(), reason: reason.to_string(), target_line });
    }
    (allows, findings)
}

/// Splits raw findings into (kept, suppressed) under the allow directives.
pub fn apply_allows(findings: Vec<Finding>, allows: Vec<Allow>) -> FileOutcome {
    let mut out = FileOutcome { allow_comments: allows.len(), ..Default::default() };
    for f in findings {
        let hit = allows.iter().find(|a| a.lint == f.lint && a.target_line == f.line);
        match hit {
            Some(a) => out.suppressed.push(Suppressed { finding: f, reason: a.reason.clone() }),
            None => out.findings.push(f),
        }
    }
    out
}

/// The aggregate result of linting a whole workspace tree.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    pub findings: Vec<Finding>,
    pub suppressed: Vec<Suppressed>,
    pub allow_comments: usize,
    pub files_scanned: usize,
}

/// Directories the walker never descends into: build artifacts, VCS
/// internals, and this crate's intentionally-dirty lint fixtures.
fn skip_dir(rel: &str) -> bool {
    matches!(rel, "target" | ".git" | "results") || rel == "crates/lint/tests/fixtures"
}

/// Walks the workspace rooted at `root` and lints every `.rs` file and
/// `Cargo.toml`, returning findings sorted by (file, line, col).
pub fn lint_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut files: Vec<(PathBuf, String)> = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> =
            std::fs::read_dir(&dir)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
        entries.sort();
        for path in entries {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            if path.is_dir() {
                if !skip_dir(&rel) {
                    stack.push(path);
                }
            } else if classify(&rel).is_some() {
                files.push((path, rel));
            }
        }
    }
    let mut report = WorkspaceReport::default();
    for (path, rel) in files {
        let Ok(src) = std::fs::read_to_string(&path) else { continue };
        let outcome = lint_file_str(&rel, &src);
        report.findings.extend(outcome.findings);
        report.suppressed.extend(outcome.suppressed);
        report.allow_comments += outcome.allow_comments;
        report.files_scanned += 1;
    }
    report.findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.lint).cmp(&(&b.file, b.line, b.col, b.lint))
    });
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_suppresses_same_line_with_reason() {
        let src = "fn f() { todo!(); } // lint: allow(hygiene) -- fixture\n";
        let out = lint_file_str("crates/core/src/x.rs", src);
        assert!(out.findings.is_empty());
        assert_eq!(out.suppressed.len(), 1);
        assert_eq!(out.suppressed[0].reason, "fixture");
        assert_eq!(out.allow_comments, 1);
    }

    #[test]
    fn own_line_allow_targets_next_code_line() {
        let src = "// lint: allow(hygiene) -- stub under construction\n\n// another comment\nfn f() { todo!(); }\n";
        let out = lint_file_str("crates/core/src/x.rs", src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.suppressed.len(), 1);
    }

    #[test]
    fn allow_without_reason_is_malformed_and_suppresses_nothing() {
        let src = "fn f() { todo!(); } // lint: allow(hygiene)\n";
        let out = lint_file_str("crates/core/src/x.rs", src);
        let lints: Vec<_> = out.findings.iter().map(|f| f.lint).collect();
        assert!(lints.contains(&"hygiene"));
        assert!(lints.contains(&"malformed-allow"));
    }

    #[test]
    fn allow_of_wrong_lint_does_not_suppress() {
        let src = "fn f() { todo!(); } // lint: allow(float-eq) -- wrong rule\n";
        let out = lint_file_str("crates/core/src/x.rs", src);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "hygiene");
    }

    #[test]
    fn unknown_lint_name_is_malformed() {
        let src = "// lint: allow(no-such-lint) -- whatever\nfn f() {}\n";
        let out = lint_file_str("crates/core/src/x.rs", src);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "malformed-allow");
    }

    #[test]
    fn classification_scopes_rules_by_path() {
        assert!(matches!(classify("crates/serve/src/scheduler.rs"),
            Some(FileKind::Rust(s)) if s.sim && s.accounting && s.wall_clock));
        assert!(matches!(classify("crates/serve/src/host_tier.rs"),
            Some(FileKind::Rust(s)) if s.sim && s.accounting && s.wall_clock));
        assert!(matches!(classify("crates/serve/src/fault.rs"),
            Some(FileKind::Rust(s)) if s.sim && s.accounting && s.wall_clock));
        assert!(matches!(classify("crates/serve/src/control.rs"),
            Some(FileKind::Rust(s)) if s.sim && s.accounting && s.wall_clock));
        assert!(matches!(classify("crates/serve/src/report.rs"),
            Some(FileKind::Rust(s)) if s.sim && s.accounting && s.wall_clock));
        assert!(matches!(classify("crates/serve/src/cluster.rs"),
            Some(FileKind::Rust(s)) if s.sim && !s.accounting && s.wall_clock));
        assert!(matches!(classify("crates/core/src/rotation.rs"),
            Some(FileKind::Rust(s)) if !s.sim && !s.accounting && s.wall_clock));
        assert!(matches!(classify("crates/bench/src/timing.rs"),
            Some(FileKind::Rust(s)) if s.sim && !s.wall_clock));
        assert!(matches!(classify("crates/tensor/src/pool.rs"),
            Some(FileKind::Rust(s)) if !s.sim && !s.wall_clock));
        assert!(matches!(classify("crates/tensor/src/matrix.rs"),
            Some(FileKind::Rust(s)) if s.wall_clock));
        assert!(matches!(classify("crates/lint/src/main.rs"),
            Some(FileKind::Rust(s)) if !s.wall_clock));
        assert!(matches!(classify("Cargo.toml"), Some(FileKind::Manifest)));
        assert!(classify("README.md").is_none());
    }

    #[test]
    fn finding_display_is_file_line_col_lint_message() {
        let f = Finding {
            file: "crates/x/src/y.rs".into(),
            line: 3,
            col: 7,
            lint: "hygiene",
            message: "boom".into(),
        };
        assert_eq!(f.to_string(), "crates/x/src/y.rs:3:7: hygiene: boom");
    }
}
