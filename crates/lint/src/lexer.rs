//! A hand-rolled Rust lexer producing tokens with 1-based line/column spans.
//!
//! Deliberately small: just enough fidelity for `qserve-lint`'s token-level
//! rules — identifiers, integer/float literals, strings (including raw and
//! byte strings), char literals vs. lifetimes, multi-character operators,
//! and comments. Comments are kept in a separate stream so the allow
//! directives can be parsed out of them. No `syn`, no proc-macro, no
//! external crates.

/// The coarse class of a token. Rules dispatch on this plus the raw text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Int,
    Float,
    Str,
    Char,
    Lifetime,
    Punct,
}

/// One lexed token with its raw text and the 1-based position of its first
/// character.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

/// One comment (line or block), kept out of the token stream.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` leader.
    pub text: String,
    pub line: u32,
    pub col: u32,
    /// True when nothing but whitespace precedes the comment on its line —
    /// an own-line allow directive targets the next code line instead of
    /// its own.
    pub own_line: bool,
}

/// The output of [`lex`]: the token stream plus the comment stream.
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Lexes Rust source. Unknown bytes are skipped rather than fatal: a lint
/// must never crash on the code it audits.
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

/// Multi-character operators, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    toks: Vec<Tok>,
    comments: Vec<Comment>,
    /// Last line on which a token or comment ended; used for `own_line`.
    content_line: u32,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
            toks: Vec::new(),
            comments: Vec::new(),
            content_line: 0,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push_tok(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.toks.push(Tok { kind, text, line, col });
        self.content_line = self.line;
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line, col),
                '/' if self.peek(1) == Some('*') => self.block_comment(line, col),
                '\'' => self.char_or_lifetime(line, col),
                '"' => self.string(line, col),
                'r' if matches!(self.peek(1), Some('"') | Some('#')) && self.raw_str_ahead(1) => {
                    self.raw_string(line, col)
                }
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line, col);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_or_lifetime(line, col);
                }
                'b' if self.peek(1) == Some('r') && self.raw_str_ahead(2) => {
                    self.bump();
                    self.raw_string(line, col);
                }
                c if c.is_ascii_digit() => self.number(line, col),
                c if c.is_alphabetic() || c == '_' => self.ident(line, col),
                _ => self.punct(line, col),
            }
        }
        Lexed { toks: self.toks, comments: self.comments }
    }

    /// Is `r` (at offset `from`) actually a raw-string opener (`r"`, `r#"`)?
    fn raw_str_ahead(&self, from: usize) -> bool {
        let mut k = from;
        while self.peek(k) == Some('#') {
            k += 1;
        }
        self.peek(k) == Some('"')
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        let own_line = self.content_line != line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push(Comment { text, line, col, own_line });
        self.content_line = line;
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        let own_line = self.content_line != line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.comments.push(Comment { text, line, col, own_line });
        self.content_line = self.line;
    }

    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        // `'a` is a lifetime unless the next-next char closes it (`'a'`).
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(n) if n.is_alphabetic() || n == '_' => self.peek(2) != Some('\''),
            _ => false,
        };
        if is_lifetime {
            let mut text = String::from("'");
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push_tok(TokKind::Lifetime, text, line, col);
        } else {
            let mut text = String::new();
            text.push(self.bump().unwrap());
            while let Some(c) = self.bump() {
                text.push(c);
                if c == '\\' {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                } else if c == '\'' {
                    break;
                }
            }
            self.push_tok(TokKind::Char, text, line, col);
        }
    }

    fn string(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        text.push(self.bump().unwrap()); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
            } else if c == '"' {
                break;
            }
        }
        self.push_tok(TokKind::Str, text, line, col);
    }

    fn raw_string(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        text.push(self.bump().unwrap()); // 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push(self.bump().unwrap());
        }
        text.push(self.bump().unwrap()); // opening quote
        loop {
            match self.bump() {
                None => break,
                Some('"') => {
                    text.push('"');
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some('#') {
                        seen += 1;
                        text.push(self.bump().unwrap());
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(c) => text.push(c),
            }
        }
        self.push_tok(TokKind::Str, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x') | Some('o') | Some('b')) {
            text.push(self.bump().unwrap());
            text.push(self.bump().unwrap());
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push_tok(TokKind::Int, text, line, col);
            return;
        }
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part: `1.5`, or trailing-dot `1.` (but not `1..2` or
        // `1.max(2)`).
        if self.peek(0) == Some('.') {
            match self.peek(1) {
                Some(d) if d.is_ascii_digit() => {
                    float = true;
                    text.push(self.bump().unwrap());
                    while let Some(c) = self.peek(0) {
                        if c.is_ascii_digit() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                Some(d) if d == '.' || d.is_alphabetic() || d == '_' => {}
                _ => {
                    float = true;
                    text.push(self.bump().unwrap());
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some('e') | Some('E')) {
            let sign = matches!(self.peek(1), Some('+') | Some('-'));
            let digit_at = if sign { 2 } else { 1 };
            if matches!(self.peek(digit_at), Some(d) if d.is_ascii_digit()) {
                float = true;
                text.push(self.bump().unwrap());
                if sign {
                    text.push(self.bump().unwrap());
                }
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix (`usize`, `f32`, ...).
        let mut suffix = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if suffix.starts_with('f') {
            float = true;
        }
        text.push_str(&suffix);
        let kind = if float { TokKind::Float } else { TokKind::Int };
        self.push_tok(kind, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_tok(TokKind::Ident, text, line, col);
    }

    fn punct(&mut self, line: u32, col: u32) {
        for op in PUNCTS {
            if op.chars().zip(0..).all(|(c, k)| self.peek(k) == Some(c)) {
                for _ in 0..op.len() {
                    self.bump();
                }
                self.push_tok(TokKind::Punct, op.to_string(), line, col);
                return;
            }
        }
        let c = self.bump().unwrap();
        self.push_tok(TokKind::Punct, c.to_string(), line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).toks.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn basic_tokens_and_spans() {
        let l = lex("let x = a - 1;\nx -= 2.5;");
        let minus = l.toks.iter().find(|t| t.text == "-").unwrap();
        assert_eq!((minus.line, minus.col), (1, 11));
        let sub = l.toks.iter().find(|t| t.text == "-=").unwrap();
        assert_eq!((sub.line, sub.col), (2, 3));
        let f = l.toks.iter().find(|t| t.kind == TokKind::Float).unwrap();
        assert_eq!(f.text, "2.5");
    }

    #[test]
    fn floats_vs_ranges_vs_methods() {
        let ks = kinds("1.5 1. 1..2 1.max(2) 2e-3 1.0f32 7usize");
        assert_eq!(ks[0], (TokKind::Float, "1.5".into()));
        assert_eq!(ks[1], (TokKind::Float, "1.".into()));
        assert_eq!(ks[2], (TokKind::Int, "1".into()));
        assert_eq!(ks[3], (TokKind::Punct, "..".into()));
        assert_eq!(ks[5], (TokKind::Int, "1".into()));
        assert_eq!(ks[6], (TokKind::Punct, ".".into()));
        assert_eq!(ks[7], (TokKind::Ident, "max".into()));
        assert!(ks.iter().any(|k| *k == (TokKind::Float, "2e-3".into())));
        assert!(ks.iter().any(|k| *k == (TokKind::Float, "1.0f32".into())));
        assert!(ks.iter().any(|k| *k == (TokKind::Int, "7usize".into())));
    }

    #[test]
    fn lifetimes_chars_strings() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let s = \"he//llo\"; }");
        assert!(ks.contains(&(TokKind::Lifetime, "'a".into())));
        assert!(ks.contains(&(TokKind::Char, "'x'".into())));
        assert!(ks.contains(&(TokKind::Str, "\"he//llo\"".into())));
    }

    #[test]
    fn raw_strings_swallow_comment_markers() {
        let l = lex("let s = r#\"// not a comment\"#; // real");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].text, "// real");
        assert!(!l.comments[0].own_line);
    }

    #[test]
    fn own_line_detection() {
        let l = lex("// top\nlet x = 1; // trailing\n  // indented own line\n");
        assert!(l.comments[0].own_line);
        assert!(!l.comments[1].own_line);
        assert!(l.comments[2].own_line);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* b */ c */ let x = 1;");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.toks[0].text, "let");
        assert_eq!(l.toks[0].col, 19);
    }
}
