//! Tensor-parallel execution model: per-GPU shard compute plus ring
//! all-reduce communication.
//!
//! A tensor-parallel group runs every layer Megatron-style: the QKV and
//! FFN-up projections are column-parallel, the attention-output and
//! FFN-down projections are row-parallel, and each of the two row-parallel
//! outputs ends in one all-reduce over the activation tile. The model here
//! follows the same discipline as the rest of `qserve-gpusim`: shard shapes
//! are exact integer quotients (`div_ceil`), so a TP=1 group degenerates to
//! the very same shapes and a zero communication term — bit-identical to
//! the single-GPU cost model, which is what keeps the paper-protocol golden
//! CSVs byte-stable while TP>1 reuses the same equations.

/// One tensor-parallel group: `ways` GPUs of the same
/// [`crate::GpuSpec`] joined by a symmetric interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpGroup {
    /// GPUs in the group (1 = no tensor parallelism).
    pub ways: usize,
    /// Per-direction link bandwidth each GPU can sustain during a
    /// collective, bytes/second.
    pub link_bytes_per_s: f64,
    /// Fixed per-hop latency of one collective step, seconds.
    pub link_latency_s: f64,
}

impl TpGroup {
    /// A single GPU: no sharding, no communication.
    pub fn single() -> Self {
        Self {
            ways: 1,
            link_bytes_per_s: f64::INFINITY,
            link_latency_s: 0.0,
        }
    }

    /// An NVLink-class group: A100 SXM NVLink is 600 GB/s *bidirectional*
    /// aggregate per GPU, i.e. 300 GB/s sustained per direction — the
    /// number a ring all-reduce step actually gets — with ~3 µs collective
    /// hop latency.
    ///
    /// # Panics
    /// Panics if `ways` is zero.
    pub fn nvlink(ways: usize) -> Self {
        assert!(ways > 0, "a TP group needs at least one GPU");
        Self {
            ways,
            link_bytes_per_s: 300e9,
            link_latency_s: 3e-6,
        }
    }

    /// A PCIe-class group (≈25 GB/s effective per direction, ~10 µs hop
    /// latency) — the fallback interconnect where TP scaling hurts.
    ///
    /// # Panics
    /// Panics if `ways` is zero.
    pub fn pcie(ways: usize) -> Self {
        assert!(ways > 0, "a TP group needs at least one GPU");
        Self {
            ways,
            link_bytes_per_s: 25e9,
            link_latency_s: 10e-6,
        }
    }

    /// Shards an integer dimension across the group: the largest per-GPU
    /// share (`div_ceil`, so TP=1 returns `n` exactly).
    pub fn shard(&self, n: usize) -> usize {
        n.div_ceil(self.ways)
    }

    /// Ring all-reduce latency over `bytes` of activations: `2·(w−1)/w`
    /// of the payload crosses each link plus `2·(w−1)` hop latencies.
    /// Exactly `0.0` for a single GPU — no communication term exists, so
    /// adding it cannot move a TP=1 latency by even one bit.
    pub fn all_reduce_latency(&self, bytes: f64) -> f64 {
        if self.ways <= 1 {
            return 0.0;
        }
        let w = self.ways as f64;
        let steps = 2.0 * (w - 1.0);
        steps * (bytes / w / self.link_bytes_per_s) + steps * self.link_latency_s
    }
}

impl Default for TpGroup {
    fn default() -> Self {
        Self::single()
    }
}

/// A device↔host transfer link — the cost model behind KV-page swap to a
/// host-memory tier. Same shape as the [`TpGroup`] interconnect terms: a
/// bandwidth term plus a fixed per-transfer latency, so swapping N pages
/// out and back is priced exactly like moving their bytes over PCIe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostLink {
    /// Sustained per-direction bandwidth, bytes/second.
    pub bytes_per_s: f64,
    /// Fixed per-transfer setup latency, seconds.
    pub latency_s: f64,
}

impl HostLink {
    /// A PCIe 4.0 x16-class link: ≈25 GB/s effective per direction with
    /// ~10 µs setup — the same numbers as [`TpGroup::pcie`], so swap cost
    /// and TP-over-PCIe cost stay mutually comparable.
    pub fn pcie4() -> Self {
        Self { bytes_per_s: 25e9, latency_s: 10e-6 }
    }

    /// An NVLink-class device-to-device path: 300 GB/s sustained per
    /// direction with ~3 µs setup — the same numbers as
    /// [`TpGroup::nvlink`], so cross-replica KV-page migration over NVLink
    /// is priced on the same scale as TP collectives over the same fabric.
    pub fn nvlink_p2p() -> Self {
        Self { bytes_per_s: 300e9, latency_s: 3e-6 }
    }

    /// Latency to move `bytes` across the link in one direction. Exactly
    /// `0.0` for zero bytes — an empty transfer must not advance a clock.
    pub fn transfer_latency(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        bytes / self.bytes_per_s + self.latency_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_gpu_is_free_and_identity() {
        let tp = TpGroup::single();
        assert_eq!(tp.shard(4096), 4096);
        assert_eq!(tp.all_reduce_latency(1e9).to_bits(), 0.0f64.to_bits());
        assert_eq!(TpGroup::default(), tp);
    }

    #[test]
    fn shard_is_exact_ceiling() {
        let tp = TpGroup::nvlink(4);
        assert_eq!(tp.shard(4096), 1024);
        assert_eq!(tp.shard(4097), 1025);
        assert_eq!(tp.shard(3), 1);
    }

    #[test]
    fn all_reduce_grows_with_ways_and_payload() {
        let small = TpGroup::nvlink(2).all_reduce_latency(1e6);
        let more_ways = TpGroup::nvlink(8).all_reduce_latency(1e6);
        let more_bytes = TpGroup::nvlink(2).all_reduce_latency(1e8);
        assert!(small > 0.0);
        assert!(more_ways > small, "more hops cost more latency");
        assert!(more_bytes > small, "more payload costs more bandwidth time");
    }

    #[test]
    fn pcie_slower_than_nvlink() {
        let bytes = 2.0 * 64.0 * 4096.0; // one decode activation tile
        assert!(
            TpGroup::pcie(4).all_reduce_latency(bytes)
                > TpGroup::nvlink(4).all_reduce_latency(bytes)
        );
    }

    #[test]
    fn host_link_prices_bytes_plus_setup() {
        let link = HostLink::pcie4();
        assert_eq!(link.transfer_latency(0.0).to_bits(), 0.0f64.to_bits());
        let one_mb = link.transfer_latency(1e6);
        assert!((one_mb - (1e6 / 25e9 + 10e-6)).abs() < 1e-15);
        assert!(link.transfer_latency(2e6) > one_mb);
    }

    #[test]
    fn nvlink_p2p_is_faster_than_pcie_and_matches_tp_numbers() {
        let nv = HostLink::nvlink_p2p();
        assert_eq!(nv.transfer_latency(0.0).to_bits(), 0.0f64.to_bits());
        let one_mb = nv.transfer_latency(1e6);
        assert!((one_mb - (1e6 / 300e9 + 3e-6)).abs() < 1e-15);
        assert!(one_mb < HostLink::pcie4().transfer_latency(1e6));
        // Same fabric constants as the TP collective model.
        let tp = TpGroup::nvlink(2);
        assert_eq!(nv.bytes_per_s.to_bits(), tp.link_bytes_per_s.to_bits());
        assert_eq!(nv.latency_s.to_bits(), tp.link_latency_s.to_bits());
    }

    #[test]
    fn ring_bandwidth_term_matches_formula() {
        let tp = TpGroup { ways: 4, link_bytes_per_s: 100e9, link_latency_s: 0.0 };
        // 2·(4−1)/4 = 1.5 payload crossings of a 400 MB buffer at 100 GB/s.
        let t = tp.all_reduce_latency(400e6);
        assert!((t - 1.5 * 400e6 / 100e9).abs() < 1e-12);
    }
}
