//! Decode/prefill attention latency model (§5.3, Table 1).
//!
//! Decode attention is a batch of GEMVs: 1 MAC per KV element, so the
//! *memory* roofline says KV4 should be 2× KV8. The catch (§5.3): a fused
//! kernel's CUDA-core ops per element — dequantization (5 ops naive),
//! MAC, control flow, address arithmetic — push its arithmetic intensity
//! past the A100's 9.8 op/byte turning point, flipping it compute-bound.
//! QServe's kernel gets back under the roof by moving to FP16 (2× the
//! compute roof), the two-op magic-bias dequant, simplified control flow,
//! and prefetched scales/zeros.

use crate::spec::GpuSpec;

/// Achieved fraction of peak bandwidth for paged-KV gather traffic.
pub const ATTN_BW_EFFICIENCY: f64 = 0.6;
/// Achieved fraction of peak CUDA-core throughput in the fused kernel.
pub const ATTN_CUDA_EFFICIENCY: f64 = 0.6;

/// The attention kernel designs compared in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttentionKernel {
    /// FP16 KV cache (TRT-LLM FP16 baseline).
    Fp16Kv,
    /// 8-bit KV, static per-tensor scales (TRT-LLM style).
    Kv8Static,
    /// 4-bit KV, dynamic per-head scales, naive 5-op dequant in FP32.
    Kv4Naive,
    /// 4-bit KV, QServe kernel: FP16 math + 2-op dequant + prefetch (§5.3).
    Kv4QServe,
    /// 4-bit KV with a runtime Hadamard transform in the attention operator
    /// (QuaRot): heavy extra CUDA-core work (§5.3).
    Kv4Hadamard,
}

impl AttentionKernel {
    /// KV storage bits per element.
    pub fn kv_bits(self) -> u32 {
        match self {
            AttentionKernel::Fp16Kv => 16,
            AttentionKernel::Kv8Static => 8,
            _ => 4,
        }
    }

    /// Dynamic per-(token, head) parameter bytes (scale + zero for K and V).
    fn param_bytes_per_token_head(self) -> f64 {
        match self {
            // FP16 scale + FP16 zero, for K and for V (§5.1).
            AttentionKernel::Kv4Naive | AttentionKernel::Kv4QServe | AttentionKernel::Kv4Hadamard => 8.0,
            // Static scales live in constant memory.
            AttentionKernel::Fp16Kv | AttentionKernel::Kv8Static => 0.0,
        }
    }

    /// CUDA-core ops per KV element in the fused decode kernel
    /// (dequant + MAC + control + addressing).
    fn ops_per_element(self) -> f64 {
        match self {
            // No dequant; FP32 MAC (2) + control (1).
            AttentionKernel::Fp16Kv => 3.0,
            // Convert+scale (2) + MAC (2) + control (1).
            AttentionKernel::Kv8Static => 5.0,
            // Mask/shift/cvt/mul/sub (5) + MAC (2) + control (2) + nibble
            // addressing (1).
            AttentionKernel::Kv4Naive => 10.0,
            // Magic-bias dequant (2) + packed-half MAC (1) + simplified
            // control (0.5) — runs on the FP16 pipe.
            AttentionKernel::Kv4QServe => 3.5,
            // Naive dequant + on-the-fly Hadamard: +log2(128)=7 FMA/element.
            AttentionKernel::Kv4Hadamard => 17.0,
        }
    }

    /// Which CUDA pipe the per-element work runs on.
    fn cuda_ops_rate(self, gpu: &GpuSpec) -> f64 {
        match self {
            AttentionKernel::Kv4QServe => gpu.fp16_cuda_ops,
            _ => gpu.fp32_cuda_ops,
        }
    }
}

/// One decode-attention launch: `batch` sequences each attending over
/// `seq_len` cached tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttentionShape {
    /// Decoding sequences in the batch.
    pub batch: usize,
    /// KV-cache length per sequence.
    pub seq_len: usize,
    /// Query heads `H`.
    pub query_heads: usize,
    /// Key/value heads `H_KV` (GQA).
    pub kv_heads: usize,
    /// Per-head dimension `D`.
    pub head_dim: usize,
}

impl AttentionShape {
    /// Total KV elements touched: K and V, all heads, all cached tokens.
    pub fn kv_elements(&self) -> f64 {
        2.0 * self.batch as f64 * self.seq_len as f64 * self.kv_heads as f64 * self.head_dim as f64
    }
}

/// Breakdown of one modelled decode-attention launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttentionLatency {
    /// Memory pipeline time, seconds.
    pub memory_s: f64,
    /// CUDA-core compute time, seconds.
    pub compute_s: f64,
    /// Total modelled latency, seconds.
    pub total_s: f64,
    /// Whether the kernel is compute-bound (the §5.3 pathology).
    pub compute_bound: bool,
}

/// The individual optimizations of §5.3/§6.4, applied on top of the naive
/// KV4 kernel. The paper's "Improvement breakdown for KV4 attention"
/// (§6.4) enables them cumulatively: 0.48 ms → 0.44 (bit tricks) → 0.39
/// (control flow) → 0.36 (fp16 QK) → 0.33 (fp16 SV) → 0.28 ms (prefetch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AttentionOptimizations {
    /// Kim et al. 2022 magic-bias dequantization: 5 ALU ops → 2 per element.
    pub bit_tricks: bool,
    /// Simplified control logic in the fused loop.
    pub simplified_control: bool,
    /// QK product in FP16 instead of FP32.
    pub fp16_qk: bool,
    /// Softmax·V product in FP16 instead of FP32.
    pub fp16_sv: bool,
    /// Asynchronous prefetch of per-head scales/zeros at kernel start.
    pub prefetch_params: bool,
}

impl AttentionOptimizations {
    /// No optimizations — the naive KV4 kernel.
    pub fn none() -> Self {
        Self::default()
    }

    /// Everything on — the QServe kernel.
    pub fn all() -> Self {
        Self {
            bit_tricks: true,
            simplified_control: true,
            fp16_qk: true,
            fp16_sv: true,
            prefetch_params: true,
        }
    }

    /// The cumulative ladder of §6.4, in the paper's order.
    pub fn ladder() -> Vec<(&'static str, Self)> {
        let mut cur = Self::none();
        let mut out = vec![("naive KV4", cur)];
        cur.bit_tricks = true;
        out.push(("+ bit tricks (2-op dequant)", cur));
        cur.simplified_control = true;
        out.push(("+ simplified control flow", cur));
        cur.fp16_qk = true;
        out.push(("+ FP16 QK product", cur));
        cur.fp16_sv = true;
        out.push(("+ FP16 SV product", cur));
        cur.prefetch_params = true;
        out.push(("+ async scale/zero prefetch", cur));
        out
    }
}

/// Models a KV4 decode-attention launch with an explicit optimization set —
/// the §6.4 breakdown. [`AttentionKernel::Kv4Naive`] ≡ none,
/// [`AttentionKernel::Kv4QServe`] ≡ all.
pub fn attention_decode_latency_with(
    gpu: &GpuSpec,
    opts: AttentionOptimizations,
    shape: AttentionShape,
) -> AttentionLatency {
    let elems = shape.kv_elements();
    let tokens_heads = shape.batch as f64 * shape.seq_len as f64 * shape.kv_heads as f64;

    // Per-element op budget, mirroring `AttentionKernel::ops_per_element`.
    let dequant = if opts.bit_tricks { 2.0 } else { 5.0 };
    // Each half (QK, SV) contributes one MAC; fp16 packing halves its cost.
    let mac = (if opts.fp16_qk { 0.5 } else { 1.0 }) + (if opts.fp16_sv { 0.5 } else { 1.0 });
    let control = if opts.simplified_control { 0.5 } else { 2.0 };
    let address = if opts.prefetch_params { 0.0 } else { 1.0 };
    let ops = dequant + mac + control + address;

    // The FP16 pipe is only usable once both products are halves.
    let rate = if opts.fp16_qk && opts.fp16_sv {
        gpu.fp16_cuda_ops
    } else {
        gpu.fp32_cuda_ops
    };
    let group = (shape.query_heads / shape.kv_heads).max(1) as f64;
    let compute_s = ops * elems * group / (rate * ATTN_CUDA_EFFICIENCY);

    let kv_bytes = elems * 0.5;
    let param_bytes = tokens_heads * 8.0;
    let qo_bytes = 2.0 * 2.0 * shape.batch as f64 * shape.query_heads as f64 * shape.head_dim as f64;
    let score_bytes = 4.0 * shape.batch as f64 * shape.query_heads as f64 * shape.seq_len as f64;
    let memory_s =
        (kv_bytes + param_bytes + qo_bytes + score_bytes) / (gpu.dram_bytes_per_s * ATTN_BW_EFFICIENCY);

    let total_s = memory_s.max(compute_s) + gpu.kernel_overhead_s;
    AttentionLatency {
        memory_s,
        compute_s,
        total_s,
        compute_bound: compute_s > memory_s,
    }
}

/// Decode-attention latency from batch-level totals: `batch` sequences with
/// `total_tokens` cached KV tokens between them. One kernel launch serves the
/// whole batch, so the per-launch overhead is charged once regardless of how
/// the tokens are distributed across sequences.
fn decode_latency_from_totals(
    gpu: &GpuSpec,
    kernel: AttentionKernel,
    batch: f64,
    total_tokens: f64,
    query_heads: usize,
    kv_heads: usize,
    head_dim: usize,
) -> AttentionLatency {
    let elems = 2.0 * total_tokens * kv_heads as f64 * head_dim as f64;
    let tokens_heads = total_tokens * kv_heads as f64;

    // Memory: quantized KV + dynamic params + queries/outputs/scores.
    let kv_bytes = elems * f64::from(kernel.kv_bits()) / 8.0;
    let param_bytes = tokens_heads * kernel.param_bytes_per_token_head();
    let qo_bytes = 2.0 * 2.0 * batch * query_heads as f64 * head_dim as f64;
    let score_bytes = 4.0 * total_tokens * query_heads as f64;
    let memory_s =
        (kv_bytes + param_bytes + qo_bytes + score_bytes) / (gpu.dram_bytes_per_s * ATTN_BW_EFFICIENCY);

    // Compute: per-element fused-kernel work. GQA replays each KV element
    // for every query head in its group.
    let group = (query_heads / kv_heads).max(1) as f64;
    let compute_s =
        kernel.ops_per_element() * elems * group / (kernel.cuda_ops_rate(gpu) * ATTN_CUDA_EFFICIENCY);

    let total_s = memory_s.max(compute_s) + gpu.kernel_overhead_s;
    AttentionLatency {
        memory_s,
        compute_s,
        total_s,
        compute_bound: compute_s > memory_s,
    }
}

/// Models one decode-attention launch.
pub fn attention_decode_latency(
    gpu: &GpuSpec,
    kernel: AttentionKernel,
    shape: AttentionShape,
) -> AttentionLatency {
    decode_latency_from_totals(
        gpu,
        kernel,
        shape.batch as f64,
        shape.batch as f64 * shape.seq_len as f64,
        shape.query_heads,
        shape.kv_heads,
        shape.head_dim,
    )
}

/// Models one decode-attention launch over a *heterogeneous* batch: each
/// sequence is charged at its true cached length, so mixed-length batches are
/// costed honestly instead of at the batch-mean length. For a homogeneous
/// batch this is exactly [`attention_decode_latency`].
pub fn attention_decode_latency_hetero(
    gpu: &GpuSpec,
    kernel: AttentionKernel,
    seq_lens: &[usize],
    query_heads: usize,
    kv_heads: usize,
    head_dim: usize,
) -> AttentionLatency {
    let total: usize = seq_lens.iter().sum();
    decode_latency_from_totals(
        gpu,
        kernel,
        seq_lens.len() as f64,
        total as f64,
        query_heads,
        kv_heads,
        head_dim,
    )
}

/// Prefill attention latency from totals: `total_tokens` = Σ sᵢ and
/// `total_sq_tokens` = Σ sᵢ² over the prompts in the wave (causal attention
/// work is quadratic per sequence, KV writes are linear).
fn prefill_latency_from_totals(
    gpu: &GpuSpec,
    kernel: AttentionKernel,
    total_tokens: f64,
    total_sq_tokens: f64,
    query_heads: usize,
    kv_heads: usize,
    head_dim: usize,
) -> f64 {
    let (h, d) = (query_heads as f64, head_dim as f64);
    // Causal QKᵀ and PV: 2 GEMMs × 2·S²/2·H·D ops each.
    let ops = 2.0 * total_sq_tokens * h * d;
    let compute_s = ops / (gpu.fp16_tc_ops * 0.7);
    // Write the new KV entries (quantized) once.
    let kv_write_bytes = 2.0 * total_tokens * kv_heads as f64 * d * f64::from(kernel.kv_bits()) / 8.0;
    let memory_s = kv_write_bytes / (gpu.dram_bytes_per_s * ATTN_BW_EFFICIENCY);
    compute_s.max(memory_s) + gpu.kernel_overhead_s
}

/// Prefill (context) attention: causal `S×S` attention on FP16 tensor cores
/// plus the KV-cache quantize-and-write pass.
pub fn attention_prefill_latency(
    gpu: &GpuSpec,
    kernel: AttentionKernel,
    batch: usize,
    seq_len: usize,
    query_heads: usize,
    kv_heads: usize,
    head_dim: usize,
) -> f64 {
    let (b, s) = (batch as f64, seq_len as f64);
    prefill_latency_from_totals(gpu, kernel, b * s, b * s * s, query_heads, kv_heads, head_dim)
}

/// Prefill attention for a wave of prompts with *per-sequence* lengths; the
/// quadratic causal work is charged at each prompt's true length. For a
/// homogeneous wave this is exactly [`attention_prefill_latency`].
pub fn attention_prefill_latency_hetero(
    gpu: &GpuSpec,
    kernel: AttentionKernel,
    input_lens: &[usize],
    query_heads: usize,
    kv_heads: usize,
    head_dim: usize,
) -> f64 {
    let total: usize = input_lens.iter().sum();
    let total_sq: f64 = input_lens.iter().map(|&s| (s * s) as f64).sum();
    prefill_latency_from_totals(gpu, kernel, total as f64, total_sq, query_heads, kv_heads, head_dim)
}

/// Prefill attention for a wave of prompt *chunks*: each entry is
/// `(new_tokens, past_tokens)` — `new_tokens` fresh prompt tokens attending
/// causally over `past_tokens` of already-cached context (an aliased shared
/// prefix and/or earlier chunks of the same prompt) plus themselves. Only
/// the new tokens' KV is written.
///
/// The causal work of a chunk is `c·(c + 2p)` in the same units that give a
/// whole prompt `s²` — and because `(Σcᵢ)² = Σ cᵢ·(cᵢ + 2pᵢ)` exactly when
/// the `pᵢ` are the running sums, every term is an exact integer and a
/// single chunk with no past, `(s, 0)`, is **bit-identical** to
/// [`attention_prefill_latency_hetero`] on `[s]`. That identity is what
/// keeps the un-shared, un-chunked paper protocol byte-stable while shared
/// or chunked runs reuse the same cost model.
pub fn attention_prefill_latency_chunked(
    gpu: &GpuSpec,
    kernel: AttentionKernel,
    chunks: &[(usize, usize)],
    query_heads: usize,
    kv_heads: usize,
    head_dim: usize,
) -> f64 {
    let total: usize = chunks.iter().map(|&(c, _)| c).sum();
    let total_sq: f64 = chunks.iter().map(|&(c, p)| (c * (c + 2 * p)) as f64).sum();
    prefill_latency_from_totals(gpu, kernel, total as f64, total_sq, query_heads, kv_heads, head_dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Llama-2-7B attention geometry at the paper's benchmark batch.
    fn shape(seq: usize) -> AttentionShape {
        AttentionShape {
            batch: 64,
            seq_len: seq,
            query_heads: 32,
            kv_heads: 32,
            head_dim: 128,
        }
    }

    #[test]
    fn naive_kv4_compute_bound_on_a100() {
        // §5.3: "the fused KV4 attention kernel can become compute-bound on
        // datacenter GPUs like A100."
        let l = attention_decode_latency(&GpuSpec::a100(), AttentionKernel::Kv4Naive, shape(1024));
        assert!(l.compute_bound, "naive KV4 must be compute-bound on A100");
    }

    #[test]
    fn kv8_memory_bound_on_a100() {
        let l = attention_decode_latency(&GpuSpec::a100(), AttentionKernel::Kv8Static, shape(1024));
        assert!(!l.compute_bound);
    }

    #[test]
    fn qserve_kv4_memory_bound_on_a100() {
        // The whole point of §5.3's optimizations.
        let l = attention_decode_latency(&GpuSpec::a100(), AttentionKernel::Kv4QServe, shape(1024));
        assert!(!l.compute_bound);
    }

    #[test]
    fn table1_naive_slower_than_kv8_on_a100() {
        // Table 1: naive KV4 runs at 0.86-0.90× the KV8 speed on A100.
        let gpu = GpuSpec::a100();
        for seq in [256usize, 512, 1024, 1536] {
            let kv8 = attention_decode_latency(&gpu, AttentionKernel::Kv8Static, shape(seq)).total_s;
            let naive = attention_decode_latency(&gpu, AttentionKernel::Kv4Naive, shape(seq)).total_s;
            let speed = kv8 / naive;
            assert!(
                (0.75..1.0).contains(&speed),
                "seq={}: naive speed ratio {} should be < 1",
                seq,
                speed
            );
        }
    }

    #[test]
    fn table1_qserve_kv4_faster_than_kv8_on_a100() {
        // Table 1: ours reaches 1.29×..1.51× over KV8, improving with seq.
        let gpu = GpuSpec::a100();
        let mut prev_speedup = 0.0;
        for seq in [128usize, 256, 512, 1024, 1536] {
            let kv8 = attention_decode_latency(&gpu, AttentionKernel::Kv8Static, shape(seq)).total_s;
            let ours = attention_decode_latency(&gpu, AttentionKernel::Kv4QServe, shape(seq)).total_s;
            let speedup = kv8 / ours;
            assert!(
                (1.2..2.1).contains(&speedup),
                "seq={}: speedup {} out of band",
                seq,
                speedup
            );
            assert!(
                speedup >= prev_speedup * 0.98,
                "speedup should grow (or hold) with seq: {} after {}",
                speedup,
                prev_speedup
            );
            prev_speedup = speedup;
        }
    }

    #[test]
    fn naive_kv4_faster_on_l40s() {
        // Table 1 discussion: "A naive KV4 attention implementation is 1.7×
        // faster on L40S than TRT-LLM-KV8" — L40S's CUDA cores are strong
        // enough that the naive kernel stays memory-bound.
        let gpu = GpuSpec::l40s();
        let kv8 = attention_decode_latency(&gpu, AttentionKernel::Kv8Static, shape(1024)).total_s;
        let naive = attention_decode_latency(&gpu, AttentionKernel::Kv4Naive, shape(1024)).total_s;
        let speedup = kv8 / naive;
        assert!(
            (1.4..2.0).contains(&speedup),
            "L40S naive KV4 speedup {} should be ≈1.7",
            speedup
        );
    }

    #[test]
    fn hadamard_attention_worst_on_a100() {
        // §5.3: QuaRot's in-kernel Hadamard makes real KV4 speedups hard.
        let gpu = GpuSpec::a100();
        let h = attention_decode_latency(&gpu, AttentionKernel::Kv4Hadamard, shape(1024)).total_s;
        let naive = attention_decode_latency(&gpu, AttentionKernel::Kv4Naive, shape(1024)).total_s;
        assert!(h > naive);
    }

    #[test]
    fn latency_scales_linearly_with_seq() {
        let gpu = GpuSpec::a100();
        let t1 = attention_decode_latency(&gpu, AttentionKernel::Kv8Static, shape(512)).total_s;
        let t2 = attention_decode_latency(&gpu, AttentionKernel::Kv8Static, shape(1024)).total_s;
        let ratio = t2 / t1;
        assert!((1.8..2.1).contains(&ratio), "ratio {}", ratio);
    }

    #[test]
    fn breakdown_ladder_monotonically_improves() {
        // §6.4: each optimization step reduces (or holds) latency, and the
        // full ladder lands ≈1.7× below the naive kernel.
        let gpu = GpuSpec::a100();
        let s = shape(1024);
        let mut prev = f64::MAX;
        let mut first = 0.0;
        let mut last = 0.0;
        for (i, (name, opts)) in AttentionOptimizations::ladder().into_iter().enumerate() {
            let t = attention_decode_latency_with(&gpu, opts, s).total_s;
            assert!(t <= prev * 1.0001, "step '{}' regressed: {} after {}", name, t, prev);
            prev = t;
            if i == 0 {
                first = t;
            }
            last = t;
        }
        let improvement = first / last;
        assert!(
            (1.4..2.4).contains(&improvement),
            "end-to-end kernel improvement {} should be ≈1.7×",
            improvement
        );
    }

    #[test]
    fn breakdown_endpoints_match_named_kernels() {
        let gpu = GpuSpec::a100();
        let s = shape(512);
        let naive_named = attention_decode_latency(&gpu, AttentionKernel::Kv4Naive, s).total_s;
        let naive_opts =
            attention_decode_latency_with(&gpu, AttentionOptimizations::none(), s).total_s;
        assert!((naive_named / naive_opts - 1.0).abs() < 0.15);
        let ours_named = attention_decode_latency(&gpu, AttentionKernel::Kv4QServe, s).total_s;
        let ours_opts =
            attention_decode_latency_with(&gpu, AttentionOptimizations::all(), s).total_s;
        assert!((ours_named / ours_opts - 1.0).abs() < 0.15);
    }

    #[test]
    fn gqa_reduces_memory_time() {
        // 8 KV heads vs 32: four times less KV traffic.
        let gpu = GpuSpec::a100();
        let mha = attention_decode_latency(&gpu, AttentionKernel::Kv8Static, shape(1024));
        let gqa = attention_decode_latency(
            &gpu,
            AttentionKernel::Kv8Static,
            AttentionShape {
                kv_heads: 8,
                ..shape(1024)
            },
        );
        assert!(gqa.memory_s < mha.memory_s / 3.0);
    }

    #[test]
    fn chunked_prefill_unchunked_is_bit_identical() {
        // The exact-integer identity (Σcᵢ)² = Σ cᵢ(cᵢ+2pᵢ): one whole-prompt
        // chunk must reproduce the hetero path bit for bit — the invariant
        // the golden-snapshot CSVs rest on.
        let gpu = GpuSpec::a100();
        for lens in [vec![1024usize], vec![1024, 512, 77], vec![1, 1, 4096]] {
            let chunks: Vec<(usize, usize)> = lens.iter().map(|&s| (s, 0)).collect();
            let hetero = attention_prefill_latency_hetero(
                &gpu, AttentionKernel::Kv4QServe, &lens, 32, 32, 128,
            );
            let chunked = attention_prefill_latency_chunked(
                &gpu, AttentionKernel::Kv4QServe, &chunks, 32, 32, 128,
            );
            assert_eq!(hetero.to_bits(), chunked.to_bits(), "lens {:?}", lens);
        }
    }

    #[test]
    fn chunk_split_work_sums_exactly_per_launch() {
        // Splitting one prompt into chunks conserves the causal-attention
        // totals: Σ cᵢ(cᵢ+2pᵢ) with running-sum pasts equals s² exactly, so
        // a merged launch of all chunks costs the same as the whole prompt.
        let gpu = GpuSpec::a100();
        let s = 1024usize;
        let whole = attention_prefill_latency_hetero(
            &gpu, AttentionKernel::Kv4QServe, &[s], 32, 32, 128,
        );
        for chunk in [128usize, 256, 1000] {
            let mut chunks = Vec::new();
            let mut past = 0;
            while past < s {
                let c = chunk.min(s - past);
                chunks.push((c, past));
                past += c;
            }
            let split = attention_prefill_latency_chunked(
                &gpu, AttentionKernel::Kv4QServe, &chunks, 32, 32, 128,
            );
            assert_eq!(whole.to_bits(), split.to_bits(), "chunk {}", chunk);
        }
    }

    #[test]
    fn shared_prefix_prefill_cheaper() {
        // A suffix over an aliased 896-token prefix costs less than
        // prefilling the whole 1024 tokens, but more than the bare suffix
        // (it still attends over the prefix).
        let gpu = GpuSpec::a100();
        let full = attention_prefill_latency_hetero(
            &gpu, AttentionKernel::Kv4QServe, &[1024], 32, 32, 128,
        );
        let bare = attention_prefill_latency_hetero(
            &gpu, AttentionKernel::Kv4QServe, &[128], 32, 32, 128,
        );
        let shared = attention_prefill_latency_chunked(
            &gpu, AttentionKernel::Kv4QServe, &[(128, 896)], 32, 32, 128,
        );
        assert!(shared < full, "sharing must save prefill: {} vs {}", shared, full);
        assert!(shared > bare, "context attention is not free: {} vs {}", shared, bare);
    }

    #[test]
    fn prefill_compute_bound_and_quadratic() {
        // Large enough that the fixed launch overhead is negligible.
        let gpu = GpuSpec::a100();
        let t1 = attention_prefill_latency(&gpu, AttentionKernel::Kv4QServe, 16, 1024, 32, 32, 128);
        let t2 = attention_prefill_latency(&gpu, AttentionKernel::Kv4QServe, 16, 2048, 32, 32, 128);
        let ratio = t2 / t1;
        assert!((3.5..4.3).contains(&ratio), "quadratic growth, got {}", ratio);
    }
}
