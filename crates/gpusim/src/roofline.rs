//! Roofline analysis (Figure 3): attainable GEMM performance versus
//! computation intensity for each weight/activation precision pair, and the
//! attention-side KV-precision rooflines.

use crate::spec::GpuSpec;

/// One of the precision pairs plotted in Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmPrecision {
    /// FP16 weights × FP16 activations.
    Fp16Fp16,
    /// INT8 × INT8 (W8A8).
    Int8Int8,
    /// INT4 weights × FP16 activations (W4A16, weight-only).
    Int4Fp16,
    /// INT4 weights × INT8 activations (W4A8 — QServe).
    Int4Int8,
    /// INT4 × INT4 (W4A4 — Atom/QuaRot).
    Int4Int4,
}

impl GemmPrecision {
    /// Weight storage bits.
    pub fn weight_bits(self) -> u32 {
        match self {
            GemmPrecision::Fp16Fp16 => 16,
            GemmPrecision::Int8Int8 => 8,
            GemmPrecision::Int4Fp16 | GemmPrecision::Int4Int8 | GemmPrecision::Int4Int4 => 4,
        }
    }

    /// Activation storage bits.
    pub fn act_bits(self) -> u32 {
        match self {
            GemmPrecision::Fp16Fp16 | GemmPrecision::Int4Fp16 => 16,
            GemmPrecision::Int8Int8 | GemmPrecision::Int4Int8 => 8,
            GemmPrecision::Int4Int4 => 4,
        }
    }

    /// Tensor-core operand width — the *compute* precision (W4A16 computes
    /// in FP16; W4A8 computes in INT8).
    pub fn compute_bits(self) -> u32 {
        self.weight_bits().max(self.act_bits()).max(4)
    }
}

/// Attainable performance (operations/second) of a decode-stage GEMM at
/// computation intensity `m` MACs/element (≈ token batch size, §3.1), for
/// an `n×k` weight that dominates memory traffic.
///
/// The model: moving one weight element costs `weight_bits/8` bytes and
/// yields `m` MACs = `2m` ops; activations add `m·act_bits/(8)` bytes per
/// `n` weight elements (negligible for the decode regime but included).
pub fn attainable_gemm_ops(gpu: &GpuSpec, prec: GemmPrecision, m: f64, n: f64, k: f64) -> f64 {
    let ops = 2.0 * m * n * k;
    let bytes = n * k * f64::from(prec.weight_bits()) / 8.0
        + m * k * f64::from(prec.act_bits()) / 8.0
        + m * n * 2.0; // FP16 outputs
    let compute_time = ops / gpu.tc_ops_for_bits(prec.compute_bits());
    let memory_time = bytes / gpu.dram_bytes_per_s;
    ops / compute_time.max(memory_time)
}

/// Attainable performance of decode attention per KV element precision
/// (the right side of Figure 3): intensity is fixed at 1 MAC/element, so the
/// roofline is purely `bandwidth × (16 / kv_bits)` relative to FP16 — "KV4
/// offers 2× peak performance for attention over KV8".
pub fn attainable_attention_ops(gpu: &GpuSpec, kv_bits: u32) -> f64 {
    // 1 MAC = 2 ops per element of kv_bits/8 bytes.
    2.0 * gpu.dram_bytes_per_s / (f64::from(kv_bits) / 8.0)
}

/// The batch size where two precision rooflines cross (None if one dominates
/// everywhere in `1..=512`). Used to verify the paper's m≈78 W4A16/W8A8
/// crossover.
pub fn crossover_batch(
    gpu: &GpuSpec,
    a: GemmPrecision,
    b: GemmPrecision,
    n: f64,
    k: f64,
) -> Option<u32> {
    let mut prev = attainable_gemm_ops(gpu, a, 1.0, n, k) - attainable_gemm_ops(gpu, b, 1.0, n, k);
    for m in 2..=512u32 {
        let cur = attainable_gemm_ops(gpu, a, f64::from(m), n, k)
            - attainable_gemm_ops(gpu, b, f64::from(m), n, k);
        if prev.signum() != cur.signum() && cur.abs().to_bits() != 0 {
            return Some(m);
        }
        prev = cur;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: f64 = 4096.0;
    const K: f64 = 4096.0;

    #[test]
    fn w4a16_w8a8_crossover_near_78() {
        // §3.1: "W4A16 has a higher theoretical throughput when m < 78,
        // while W8A8 performs better when m > 78."
        let gpu = GpuSpec::a100();
        let m = crossover_batch(&gpu, GemmPrecision::Int4Fp16, GemmPrecision::Int8Int8, N, K)
            .expect("curves must cross");
        assert!((70..=90).contains(&m), "crossover at {}, expected ≈78", m);
    }

    #[test]
    fn w4a8_dominates_both_everywhere() {
        // Figure 3: "the W4A8 roofline dominates both W4A16 and W8A8 across
        // different batch sizes."
        let gpu = GpuSpec::a100();
        for m in [1u32, 4, 16, 64, 78, 128, 256, 512] {
            let m = f64::from(m);
            let w4a8 = attainable_gemm_ops(&gpu, GemmPrecision::Int4Int8, m, N, K);
            let w4a16 = attainable_gemm_ops(&gpu, GemmPrecision::Int4Fp16, m, N, K);
            let w8a8 = attainable_gemm_ops(&gpu, GemmPrecision::Int8Int8, m, N, K);
            assert!(w4a8 >= w4a16 * 0.999, "m={}: W4A8 {} < W4A16 {}", m, w4a8, w4a16);
            assert!(w4a8 >= w8a8 * 0.999, "m={}: W4A8 {} < W8A8 {}", m, w4a8, w8a8);
        }
    }

    #[test]
    fn w4a4_beats_w4a8_only_past_78() {
        // §3.2: "W4A4 starts to achieve better theoretical GEMM performance
        // when m … exceeds 78" (INT4 TC is 2× INT8 TC).
        let gpu = GpuSpec::a100();
        let small = attainable_gemm_ops(&gpu, GemmPrecision::Int4Int4, 16.0, N, K);
        let w4a8_small = attainable_gemm_ops(&gpu, GemmPrecision::Int4Int8, 16.0, N, K);
        // Identical weight traffic; W4A4 saves a sliver of activation bytes,
        // hence the 2% tolerance.
        assert!(small <= w4a8_small * 1.02);
        let big = attainable_gemm_ops(&gpu, GemmPrecision::Int4Int4, 256.0, N, K);
        let w4a8_big = attainable_gemm_ops(&gpu, GemmPrecision::Int4Int8, 256.0, N, K);
        assert!(big > w4a8_big);
    }

    #[test]
    fn memory_bound_small_batch_tracks_weight_bits() {
        // At m=1 everything is weight-bandwidth bound: 4-bit weights should
        // be ~2× faster than 8-bit, ~4× faster than FP16.
        let gpu = GpuSpec::a100();
        let f16 = attainable_gemm_ops(&gpu, GemmPrecision::Fp16Fp16, 1.0, N, K);
        let w8 = attainable_gemm_ops(&gpu, GemmPrecision::Int8Int8, 1.0, N, K);
        let w4 = attainable_gemm_ops(&gpu, GemmPrecision::Int4Fp16, 1.0, N, K);
        assert!((w8 / f16 - 2.0).abs() < 0.1);
        assert!((w4 / f16 - 4.0).abs() < 0.4);
    }

    #[test]
    fn compute_bound_large_batch_tracks_tc_peak() {
        let gpu = GpuSpec::a100();
        let w8 = attainable_gemm_ops(&gpu, GemmPrecision::Int8Int8, 2048.0, N, K);
        assert!(w8 > 0.85 * gpu.int8_tc_ops, "should approach INT8 peak");
    }

    #[test]
    fn kv4_doubles_attention_roofline_over_kv8() {
        let gpu = GpuSpec::a100();
        let kv8 = attainable_attention_ops(&gpu, 8);
        let kv4 = attainable_attention_ops(&gpu, 4);
        assert_eq!(kv4, 2.0 * kv8);
    }

    #[test]
    fn compute_bits_selection() {
        assert_eq!(GemmPrecision::Int4Fp16.compute_bits(), 16);
        assert_eq!(GemmPrecision::Int4Int8.compute_bits(), 8);
        assert_eq!(GemmPrecision::Int4Int4.compute_bits(), 4);
    }
}
