//! GEMM main-loop latency model (§3.2, Figure 5, Figure 18).
//!
//! For an `m×n×k` GEMM the model charges three resources:
//!
//! * **memory**: weights + activations + outputs (+ group scales) over HBM at
//!   an achieved-bandwidth fraction;
//! * **tensor cores**: `2mnk` ops at the compute precision's peak, scaled by
//!   an occupancy factor (Atom/QuaRot's duplicated INT32+FP32 accumulators
//!   cut concurrent warps, §3.2);
//! * **CUDA cores**: the main-loop dequantization ops each kernel design
//!   performs (Figure 5) — zero for FP16/W8A8, weight conversion for
//!   W4A16, *partial-sum* conversion for W4A4, and the cheap
//!   register-level-parallel sequence for QServe's W4A8.
//!
//! `latency = max(mem, tc + dequant) + launch overhead`: tensor-core and
//! CUDA-core work sit on the same dependency chain inside the main loop
//! (they cannot overlap within an iteration), while memory transfers are
//! pipelined against compute via `cp.async` multi-stage buffering (§5.2.4).

use crate::spec::GpuSpec;

/// Fraction of peak HBM bandwidth a well-tuned GEMM achieves.
pub const GEMM_BW_EFFICIENCY: f64 = 0.8;
/// Fraction of peak CUDA-core throughput achieved inside a main loop.
pub const CUDA_EFFICIENCY: f64 = 0.6;

/// The GEMM kernel designs compared in the paper (Figures 2b, 15, 17, 18).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmConfig {
    /// TensorRT-LLM FP16 (Figure 5a's dataflow at 16-bit).
    TrtFp16,
    /// TensorRT-LLM W8A8: INT8 main loop, epilogue-only dequant (Figure 5a).
    TrtW8A8,
    /// TensorRT-LLM W4A16: INT4→FP16 weight conversion in the main loop
    /// (Figure 5b).
    TrtW4A16,
    /// Atom W4A4 g128: INT32→FP32 partial-sum conversion in the main loop +
    /// doubled accumulator registers (Figure 5c).
    AtomW4A4,
    /// QuaRot W4A4: same main-loop structure as Atom.
    QuarotW4A4,
    /// QServe W4A8 per-channel: 3-op unpack only; zero-points fused into the
    /// epilogue (§5.2.2).
    QServeW4A8PerChannel,
    /// QServe W4A8 per-group: 3-op unpack + 2-op sub-after-mul RLP dequant
    /// (§5.2.3).
    QServeW4A8PerGroup,
    /// DGQ-style W4A8: dequantization in a *separate kernel* from the GEMM
    /// (§4.1: "the end-to-end latency of W4A8 GEMM in DGQ is even slower
    /// than the W8A8 GEMM in cuBLAS").
    DgqW4A8Unfused,
    /// QServe's per-group kernel with per-lane *saturating* arithmetic
    /// instead of the protective range — no register-level parallelism, so
    /// each weight costs scalar saturated ops (§4.1: "simply applying
    /// saturation will severely damage the computation throughput, reducing
    /// speed by as much as 67%").
    QServeW4A8Saturated,
}

impl GemmConfig {
    /// Weight storage bits.
    pub fn weight_bits(self) -> u32 {
        match self {
            GemmConfig::TrtFp16 => 16,
            GemmConfig::TrtW8A8 => 8,
            _ => 4,
        }
    }

    /// Activation storage bits.
    pub fn act_bits(self) -> u32 {
        match self {
            GemmConfig::TrtFp16 | GemmConfig::TrtW4A16 => 16,
            GemmConfig::TrtW8A8
            | GemmConfig::QServeW4A8PerChannel
            | GemmConfig::QServeW4A8PerGroup
            | GemmConfig::DgqW4A8Unfused
            | GemmConfig::QServeW4A8Saturated => 8,
            GemmConfig::AtomW4A4 | GemmConfig::QuarotW4A4 => 4,
        }
    }

    /// Tensor-core operand width the kernel computes in.
    pub fn compute_bits(self) -> u32 {
        match self {
            GemmConfig::TrtFp16 | GemmConfig::TrtW4A16 => 16,
            GemmConfig::TrtW8A8
            | GemmConfig::QServeW4A8PerChannel
            | GemmConfig::QServeW4A8PerGroup
            | GemmConfig::DgqW4A8Unfused
            | GemmConfig::QServeW4A8Saturated => 8,
            GemmConfig::AtomW4A4 | GemmConfig::QuarotW4A4 => 4,
        }
    }

    /// Main-loop CUDA-core dequantization ops charged per *weight element
    /// load* (weight-dequantizing kernels).
    fn dequant_ops_per_weight(self) -> f64 {
        match self {
            GemmConfig::TrtFp16 | GemmConfig::TrtW8A8 => 0.0,
            // INT4→FP16 with fast lop3 tricks + per-group scale FMA.
            GemmConfig::TrtW4A16 => 1.0,
            // Partial-sum kernels dequantize sums, not weights, but still
            // pay per-operand scale/zero fetches and the strided-address
            // arithmetic of two group-quantized operands.
            GemmConfig::AtomW4A4 | GemmConfig::QuarotW4A4 => 1.0,
            // 3 logic ops per 8 weights (Figure 13).
            GemmConfig::QServeW4A8PerChannel => 3.0 / 8.0,
            // + one vmul and one vadd4 per 4 weights (Figure 14b).
            GemmConfig::QServeW4A8PerGroup => 3.0 / 8.0 + 2.0 / 4.0,
            // Dequantization happens in its own kernel (cost added to the
            // memory term in `gemm_latency`), not the main loop.
            GemmConfig::DgqW4A8Unfused => 0.0,
            // Per-lane saturating mul+sub with no 4-way packing: the
            // unpack plus ~1.4 scalar saturated ops per element.
            GemmConfig::QServeW4A8Saturated => 3.0 / 8.0 + 5.6,
        }
    }

    /// Main-loop CUDA-core ops charged per *partial-sum element per k-tile*
    /// (the Atom/QuaRot cost: INT32→FP32 convert + two scale FMAs + add,
    /// §3.2 "de-quantizing one single partial sum … is equivalent to 50
    /// tensor core MACs").
    fn dequant_ops_per_partial_sum(self) -> f64 {
        match self {
            GemmConfig::AtomW4A4 | GemmConfig::QuarotW4A4 => 4.0,
            _ => 0.0,
        }
    }

    /// Occupancy factor: Atom/QuaRot hold both INT32 and FP32 accumulator
    /// sets, halving in-flight warps available for latency hiding (§3.2).
    fn occupancy(self) -> f64 {
        match self {
            GemmConfig::AtomW4A4 | GemmConfig::QuarotW4A4 => 0.6,
            _ => 1.0,
        }
    }

    /// Quantization group size along `k` for kernels with per-group scales.
    fn group_size(self) -> Option<f64> {
        match self {
            GemmConfig::TrtW4A16 => Some(128.0),
            GemmConfig::AtomW4A4 | GemmConfig::QuarotW4A4 => Some(128.0),
            GemmConfig::QServeW4A8PerGroup
            | GemmConfig::DgqW4A8Unfused
            | GemmConfig::QServeW4A8Saturated => Some(128.0),
            _ => None,
        }
    }
}

/// `m×n×k` problem: `m` tokens, `n` output channels, `k` input channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Tokens (the computation-intensity axis of Figure 3).
    pub m: usize,
    /// Output channels.
    pub n: usize,
    /// Input channels (reduction).
    pub k: usize,
}

/// The k-tile depth of one main-loop iteration (partial sums are converted
/// once per iteration in Atom-style kernels).
const K_TILE: f64 = 64.0;
/// Output-tile height: weights are re-loaded (and re-dequantized) once per
/// `TILE_M` tokens.
const TILE_M: f64 = 128.0;

/// Breakdown of one modelled GEMM execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmLatency {
    /// Memory pipeline time (occupancy-adjusted), seconds.
    pub memory_s: f64,
    /// Tensor-core time (occupancy-adjusted), seconds.
    pub tensor_core_s: f64,
    /// Main-loop CUDA-core dequantization time, seconds.
    pub dequant_s: f64,
    /// Total modelled latency, seconds.
    pub total_s: f64,
}

impl GemmLatency {
    /// Fraction of total runtime spent on main-loop dequantization (the
    /// Figure 18 metric: achieved speed vs a dequantization-free kernel).
    pub fn dequant_overhead(&self) -> f64 {
        if self.dequant_s.abs().to_bits() == 0 {
            0.0
        } else {
            self.dequant_s / self.total_s
        }
    }
}

/// Models one GEMM execution.
///
/// `total = max(memory, tensor-core) + dequant + launch overhead`: `cp.async`
/// pipelining overlaps HBM traffic with MMA issue, but the main loop's
/// CUDA-core dequantization sits on the MMA dependency chain and steals
/// issue slots, so it is charged additively (this is exactly the overhead
/// Figure 18 measures).
pub fn gemm_latency(gpu: &GpuSpec, cfg: GemmConfig, shape: GemmShape) -> GemmLatency {
    let (m, n, k) = (shape.m as f64, shape.n as f64, shape.k as f64);
    let ops = 2.0 * m * n * k;

    // Memory: weights + activations + FP16 outputs + group scales. Reduced
    // occupancy also hurts latency hiding on the memory side (§3.2).
    let mut bytes = n * k * f64::from(cfg.weight_bits()) / 8.0
        + m * k * f64::from(cfg.act_bits()) / 8.0
        + m * n * 2.0;
    if let Some(g) = cfg.group_size() {
        bytes += n * (k / g) * 2.0; // FP16 or u8+u4 scales per group
    }
    let memory_s = bytes / (gpu.dram_bytes_per_s * GEMM_BW_EFFICIENCY * cfg.occupancy());

    // Tensor cores.
    let tensor_core_s = ops / (gpu.tc_ops_for_bits(cfg.compute_bits()) * cfg.occupancy());

    // CUDA-core dequantization in the main loop. QServe's unpack/RLP
    // sequence is pure INT32 logic (lop3/vadd4) running at full ALU rate;
    // W4A16's INT→FP16 conversion and Atom's partial-sum conversion run on
    // the FP32 pipe at fused-kernel efficiency.
    let weight_loads = n * k * (m / TILE_M).max(1.0).ceil();
    let mut dequant_ops = cfg.dequant_ops_per_weight() * weight_loads;
    if cfg.dequant_ops_per_partial_sum() > 0.0 {
        dequant_ops += cfg.dequant_ops_per_partial_sum() * m * n * (k / K_TILE);
    }
    let dequant_rate = match cfg {
        GemmConfig::QServeW4A8PerChannel | GemmConfig::QServeW4A8PerGroup => gpu.int32_alu_ops,
        // Saturating / converting instructions do not pack lanes and run at
        // the scalar FP32 pipe rate.
        _ => gpu.fp32_cuda_ops * CUDA_EFFICIENCY * cfg.occupancy(),
    };
    let dequant_s = if dequant_ops > 0.0 {
        dequant_ops / dequant_rate
    } else {
        0.0
    };

    // DGQ runs dequantization as a standalone kernel: read W4, write W8,
    // then the GEMM re-reads W8 — pure extra memory traffic plus a launch.
    let unfused_s = if cfg == GemmConfig::DgqW4A8Unfused {
        let dequant_kernel_bytes = n * k * 0.5 + n * k; // read INT4, write INT8
        let gemm_extra_read = n * k * 0.5; // GEMM streams INT8, not INT4
        (dequant_kernel_bytes + gemm_extra_read) / (gpu.dram_bytes_per_s * GEMM_BW_EFFICIENCY)
            + gpu.kernel_overhead_s
    } else {
        0.0
    };

    let total_s = memory_s.max(tensor_core_s) + dequant_s + unfused_s + gpu.kernel_overhead_s;
    GemmLatency {
        memory_s,
        tensor_core_s,
        dequant_s,
        total_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(m: usize) -> GemmShape {
        GemmShape { m, n: 4096, k: 4096 }
    }

    #[test]
    fn w8a8_has_no_dequant_overhead() {
        let l = gemm_latency(&GpuSpec::a100(), GemmConfig::TrtW8A8, shape(64));
        assert_eq!(l.dequant_overhead(), 0.0);
    }

    #[test]
    fn figure18_overhead_ordering() {
        // Figure 18: Atom-W4A4 overhead (up to 90%) ≫ W4A16 ≫ W4A8 (ours)
        // ≫ W8A8 (≈0), across m = 8..128.
        let gpu = GpuSpec::a100();
        for m in [8usize, 16, 32, 64, 128] {
            let atom = gemm_latency(&gpu, GemmConfig::AtomW4A4, shape(m)).dequant_overhead();
            let w4a16 = gemm_latency(&gpu, GemmConfig::TrtW4A16, shape(m)).dequant_overhead();
            let ours = gemm_latency(&gpu, GemmConfig::QServeW4A8PerGroup, shape(m)).dequant_overhead();
            let w8a8 = gemm_latency(&gpu, GemmConfig::TrtW8A8, shape(m)).dequant_overhead();
            assert!(atom > w4a16, "m={}: atom {} ≤ w4a16 {}", m, atom, w4a16);
            assert!(w4a16 > ours, "m={}: w4a16 {} ≤ ours {}", m, w4a16, ours);
            assert!(ours > w8a8, "m={}: ours {} ≤ w8a8 {}", m, ours, w8a8);
            assert!(ours < 0.2, "m={}: our overhead {} should be small", m, ours);
        }
        // At compute-heavy batches the Atom overhead dominates the runtime
        // ("up to 90%" in the abstract).
        let atom_big = gemm_latency(&gpu, GemmConfig::AtomW4A4, shape(128)).dequant_overhead();
        assert!(atom_big > 0.5, "Atom overhead at m=128 is {}", atom_big);
    }

    #[test]
    fn qserve_w4a8_beats_w8a8_at_decode_batches() {
        // §4.1: "our QServe W4A8 per-group GEMM achieves 1.5× speedup over
        // the W8A8 cuBLAS GEMM" — memory-bound decode regime.
        let gpu = GpuSpec::a100();
        for m in [16usize, 32, 64, 128] {
            let ours = gemm_latency(&gpu, GemmConfig::QServeW4A8PerGroup, shape(m)).total_s;
            let w8a8 = gemm_latency(&gpu, GemmConfig::TrtW8A8, shape(m)).total_s;
            let speedup = w8a8 / ours;
            assert!(
                (1.2..=2.2).contains(&speedup),
                "m={}: speedup {} outside the expected band",
                m,
                speedup
            );
        }
    }

    #[test]
    fn atom_slower_than_w8a8_despite_int4_cores() {
        // Figure 2b's core finding: W4A4 systems lose to TRT-W8A8 end to end
        // even though INT4 tensor cores are 2× INT8.
        // Atom's small-batch GEMMs enjoy 4-bit weight traffic; the partial-
        // sum dequantization + register pressure bites once the tensor-core
        // work grows (m ≥ 64 covers the paper's serving batches).
        let gpu = GpuSpec::a100();
        for m in [64usize, 128, 256, 512] {
            let atom = gemm_latency(&gpu, GemmConfig::AtomW4A4, shape(m)).total_s;
            let w8a8 = gemm_latency(&gpu, GemmConfig::TrtW8A8, shape(m)).total_s;
            assert!(atom > w8a8, "m={}: Atom {} should be slower than W8A8 {}", m, atom, w8a8);
        }
    }

    #[test]
    fn w4a16_wins_small_batch_w8a8_wins_large() {
        let gpu = GpuSpec::a100();
        let small_w4 = gemm_latency(&gpu, GemmConfig::TrtW4A16, shape(4)).total_s;
        let small_w8 = gemm_latency(&gpu, GemmConfig::TrtW8A8, shape(4)).total_s;
        assert!(small_w4 < small_w8, "W4A16 should win at batch 4");
        let big_w4 = gemm_latency(&gpu, GemmConfig::TrtW4A16, shape(512)).total_s;
        let big_w8 = gemm_latency(&gpu, GemmConfig::TrtW8A8, shape(512)).total_s;
        assert!(big_w8 < big_w4, "W8A8 should win at batch 512");
    }

    #[test]
    fn per_channel_cheaper_than_per_group() {
        // Per-channel skips the level-2 dequant ops; it must never be slower.
        let gpu = GpuSpec::a100();
        for m in [8usize, 64, 256] {
            let pc = gemm_latency(&gpu, GemmConfig::QServeW4A8PerChannel, shape(m)).total_s;
            let pg = gemm_latency(&gpu, GemmConfig::QServeW4A8PerGroup, shape(m)).total_s;
            assert!(pc <= pg, "m={}", m);
        }
    }

    #[test]
    fn latency_monotonic_in_m() {
        let gpu = GpuSpec::a100();
        let mut prev = 0.0;
        for m in [1usize, 8, 32, 128, 512, 2048] {
            let t = gemm_latency(&gpu, GemmConfig::QServeW4A8PerGroup, shape(m)).total_s;
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn dgq_unfused_slower_than_w8a8() {
        // §4.1: "the end-to-end latency of W4A8 GEMM in DGQ is even slower
        // than the W8A8 GEMM in cuBLAS" — while QServe's fused kernel wins.
        let gpu = GpuSpec::a100();
        for m in [16usize, 64, 128] {
            let dgq = gemm_latency(&gpu, GemmConfig::DgqW4A8Unfused, shape(m)).total_s;
            let w8a8 = gemm_latency(&gpu, GemmConfig::TrtW8A8, shape(m)).total_s;
            let ours = gemm_latency(&gpu, GemmConfig::QServeW4A8PerGroup, shape(m)).total_s;
            assert!(dgq > w8a8, "m={}: DGQ {} must lose to W8A8 {}", m, dgq, w8a8);
            assert!(ours < w8a8, "m={}: fused W4A8 must beat W8A8", m);
        }
    }

    #[test]
    fn saturation_destroys_throughput() {
        // §4.1: saturating dequantization reduces speed "by as much as 67%"
        // relative to the protective-range RLP kernel.
        let gpu = GpuSpec::a100();
        let sat = gemm_latency(&gpu, GemmConfig::QServeW4A8Saturated, shape(64)).total_s;
        let rlp = gemm_latency(&gpu, GemmConfig::QServeW4A8PerGroup, shape(64)).total_s;
        let speed_loss = 1.0 - rlp / sat;
        assert!(
            (0.35..0.75).contains(&speed_loss),
            "saturation speed loss {} should approach the paper's 67%",
            speed_loss
        );
    }

    #[test]
    fn dgq_unfused_loses_on_l40s_too() {
        // The DGQ pathology is architectural (extra kernel + traffic), not
        // A100-specific.
        let gpu = GpuSpec::l40s();
        let dgq = gemm_latency(&gpu, GemmConfig::DgqW4A8Unfused, shape(64)).total_s;
        let w8a8 = gemm_latency(&gpu, GemmConfig::TrtW8A8, shape(64)).total_s;
        assert!(dgq > w8a8);
    }

    #[test]
    fn latency_model_deterministic() {
        let gpu = GpuSpec::a100();
        let a = gemm_latency(&gpu, GemmConfig::QServeW4A8PerGroup, shape(64));
        let b = gemm_latency(&gpu, GemmConfig::QServeW4A8PerGroup, shape(64));
        assert_eq!(a, b);
    }

    #[test]
    fn l40s_dequant_cheaper_relative() {
        // "We use per-group quantization for L40S … because L40S has
        // stronger CUDA cores for dequantization" (§6.3): the per-group
        // overhead fraction must be smaller on L40S than on A100.
        let a = gemm_latency(&GpuSpec::a100(), GemmConfig::QServeW4A8PerGroup, shape(64));
        let l = gemm_latency(&GpuSpec::l40s(), GemmConfig::QServeW4A8PerGroup, shape(64));
        assert!(l.dequant_overhead() < a.dequant_overhead());
    }
}
