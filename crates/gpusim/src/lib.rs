//! Analytical GPU cost model for the QServe reproduction.
//!
//! The paper's performance arguments are roofline and operation-counting
//! arguments (§3, §5.3): CUDA-core dequantization competes with tensor-core
//! MMA inside the GEMM main loop; KV4 attention is memory-bound only if its
//! arithmetic intensity stays under the CUDA-core roofline turning point.
//! This crate implements those equations for the two evaluation GPUs:
//!
//! * [`spec`] — A100-80G-SXM4 and L40S-48G datasheets (tensor-core TOPS per
//!   precision, CUDA-core throughput, HBM bandwidth, capacity, price).
//! * [`roofline`] — attainable-performance curves (Figure 3).
//! * [`gemm_model`] — main-loop latency for every precision configuration in
//!   the paper's comparison (TRT FP16/W8A8/W4A16, Atom/QuaRot W4A4, QServe
//!   W4A8 per-channel/per-group), including dequantization overhead
//!   (Figure 18) and register-pressure occupancy effects (§3.2).
//! * [`attention_model`] — decode/prefill attention latency for KV8,
//!   naive KV4, and QServe KV4 (Table 1).
//! * [`tp`] — tensor-parallel groups: exact-integer shard shapes plus a
//!   ring all-reduce cost term (TP=1 degenerates to the single-GPU model
//!   bit for bit).
//!
//! Absolute times are model outputs, not measurements; the calibrated
//! quantities are the *ratios* the paper's figures argue about (who wins,
//! where the crossovers sit). See DESIGN.md §1.

pub mod attention_model;
pub mod gemm_model;
pub mod roofline;
pub mod spec;
pub mod tp;

pub use attention_model::{attention_decode_latency, AttentionKernel, AttentionShape};
pub use gemm_model::{gemm_latency, GemmConfig, GemmShape};
pub use spec::GpuSpec;
pub use tp::{HostLink, TpGroup};
