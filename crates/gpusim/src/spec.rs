//! GPU datasheets for the two evaluation platforms (§6.1, footnote 1).


/// Peak throughput and capacity figures for one GPU.
///
/// Values follow the vendor datasheets the paper cites: "A100 has a peak
/// FP16/INT8/INT4 tensor core performance of 312/624/1248 TOPS and a DRAM
/// bandwidth of 2 TB/s", CUDA-core FP32 19.5 TFLOPS (turning point
/// 19.5/2 ≈ 9.8 op/byte, §5.3).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// FP16 tensor-core peak, operations/second.
    pub fp16_tc_ops: f64,
    /// INT8 tensor-core peak, operations/second.
    pub int8_tc_ops: f64,
    /// INT4 tensor-core peak, operations/second.
    pub int4_tc_ops: f64,
    /// FP32 CUDA-core peak, operations/second.
    pub fp32_cuda_ops: f64,
    /// FP16 CUDA-core peak (packed half2), operations/second.
    pub fp16_cuda_ops: f64,
    /// INT32 ALU peak (pointer arithmetic, logic ops), operations/second.
    pub int32_alu_ops: f64,
    /// DRAM bandwidth, bytes/second.
    pub dram_bytes_per_s: f64,
    /// Device memory capacity, bytes.
    pub memory_bytes: u64,
    /// Street price in USD (Figure 1: $25K vs $8K, the 3× cost argument).
    pub price_usd: f64,
    /// Fixed kernel launch + tail latency added to every kernel, seconds.
    pub kernel_overhead_s: f64,
}

impl GpuSpec {
    /// NVIDIA A100-80G-SXM4.
    pub fn a100() -> Self {
        Self {
            name: "A100-80G-SXM4",
            fp16_tc_ops: 312e12,
            int8_tc_ops: 624e12,
            int4_tc_ops: 1248e12,
            fp32_cuda_ops: 19.5e12,
            fp16_cuda_ops: 39.0e12,
            int32_alu_ops: 19.5e12,
            dram_bytes_per_s: 2.0e12,
            memory_bytes: 80 * (1u64 << 30),
            price_usd: 25_000.0,
            kernel_overhead_s: 4e-6,
        }
    }

    /// NVIDIA L40S-48G. "L40S has stronger CUDA cores" relative to its
    /// bandwidth: FP32 91.6 TFLOPS against 864 GB/s — a roofline turning
    /// point of ~106 op/byte vs the A100's 9.8, which is why naive KV4 wins
    /// on L40S but loses on A100 (Table 1 discussion).
    pub fn l40s() -> Self {
        Self {
            name: "L40S-48G",
            fp16_tc_ops: 362e12,
            int8_tc_ops: 733e12,
            int4_tc_ops: 1466e12,
            fp32_cuda_ops: 91.6e12,
            fp16_cuda_ops: 91.6e12,
            int32_alu_ops: 45.8e12,
            dram_bytes_per_s: 0.864e12,
            memory_bytes: 48 * (1u64 << 30),
            price_usd: 8_000.0,
            kernel_overhead_s: 4e-6,
        }
    }

    /// CUDA-core roofline turning point in FP32 ops/byte (§5.3 quotes
    /// 9.8 for A100).
    pub fn cuda_turning_point(&self) -> f64 {
        self.fp32_cuda_ops / self.dram_bytes_per_s
    }

    /// Tensor-core peak for a given MMA operand width (16/8/4 bits).
    ///
    /// # Panics
    /// Panics on an unsupported width.
    pub fn tc_ops_for_bits(&self, bits: u32) -> f64 {
        match bits {
            16 => self.fp16_tc_ops,
            8 => self.int8_tc_ops,
            4 => self.int4_tc_ops,
            other => panic!("no tensor core for {other}-bit operands"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_turning_point_matches_paper() {
        let tp = GpuSpec::a100().cuda_turning_point();
        assert!((tp - 9.75).abs() < 0.1, "A100 turning point {} ≠ ~9.8", tp);
    }

    #[test]
    fn l40s_cuda_cores_relatively_stronger() {
        let a = GpuSpec::a100();
        let l = GpuSpec::l40s();
        assert!(l.cuda_turning_point() > 10.0 * a.cuda_turning_point());
    }

    #[test]
    fn tensor_core_doubling_per_halved_precision() {
        let a = GpuSpec::a100();
        assert_eq!(a.tc_ops_for_bits(8), 2.0 * a.tc_ops_for_bits(16));
        assert_eq!(a.tc_ops_for_bits(4), 2.0 * a.tc_ops_for_bits(8));
    }

    #[test]
    fn price_ratio_is_about_3x() {
        let ratio = GpuSpec::a100().price_usd / GpuSpec::l40s().price_usd;
        assert!((ratio - 3.125).abs() < 0.2);
    }

    #[test]
    #[should_panic(expected = "no tensor core")]
    fn rejects_unknown_width() {
        GpuSpec::a100().tc_ops_for_bits(2);
    }
}
