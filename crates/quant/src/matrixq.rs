//! Whole-matrix quantization under a [`QuantSpec`].

use crate::params::QParams;
use crate::{Granularity, QuantSpec};
use qserve_tensor::stats::{row_abs_max, row_min_max};
use qserve_tensor::Matrix;

/// A quantized matrix: integer codes plus one [`QParams`] per sharing unit.
///
/// Codes are stored as `i32` for generality (this type backs every precision
/// in the paper's comparison tables); the bit-packed formats used by the
/// emulated GPU kernels live in `qserve-kernels`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    spec: QuantSpec,
    rows: usize,
    cols: usize,
    codes: Vec<i32>,
    params: Vec<QParams>,
}

impl QuantizedMatrix {
    /// Quantizes `m` according to `spec` (round-to-nearest-even, ranges per
    /// Equation 2 of the paper).
    ///
    /// # Panics
    /// Panics if a per-group granularity does not divide the column count.
    pub fn quantize(m: &Matrix, spec: QuantSpec) -> Self {
        Self::quantize_clipped(m, spec, 1.0)
    }

    /// Quantizes with a clip ratio `α` applied to the dynamic range
    /// (`W_max = α·max(W)`, `W_min = α·min(W)` — §4.3.4 weight clipping).
    ///
    /// # Panics
    /// Panics if `alpha` is not in `(0, 1]` or the granularity is invalid.
    pub fn quantize_clipped(m: &Matrix, spec: QuantSpec, alpha: f32) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "clip ratio must be in (0,1]");
        let (rows, cols) = m.shape();
        let (qmin, qmax) = spec.q_range();
        let n_params = spec.granularity.param_count(rows, cols);
        let mut params = vec![QParams::default(); n_params];

        match spec.granularity {
            Granularity::PerTensor => {
                params[0] = Self::params_for_slice(m.as_slice(), spec, alpha, qmin, qmax);
            }
            Granularity::PerRow => {
                if spec.symmetric {
                    for (i, am) in row_abs_max(m).into_iter().enumerate() {
                        params[i] = QParams::symmetric(am * alpha, qmax);
                    }
                } else {
                    for (i, (lo, hi)) in row_min_max(m).into_iter().enumerate() {
                        params[i] = QParams::asymmetric(lo * alpha, hi * alpha, qmin, qmax);
                    }
                }
            }
            Granularity::PerGroup { group_size } => {
                let groups_per_row = cols / group_size;
                for i in 0..rows {
                    let row = m.row(i);
                    for g in 0..groups_per_row {
                        let slice = &row[g * group_size..(g + 1) * group_size];
                        params[i * groups_per_row + g] =
                            Self::params_for_slice(slice, spec, alpha, qmin, qmax);
                    }
                }
            }
        }

        let mut codes = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for (j, &x) in m.row(i).iter().enumerate() {
                let p = params[spec.granularity.param_index(i, j, cols)];
                codes.push(p.quantize(x, qmin, qmax));
            }
        }
        Self {
            spec,
            rows,
            cols,
            codes,
            params,
        }
    }

    fn params_for_slice(slice: &[f32], spec: QuantSpec, alpha: f32, qmin: i32, qmax: i32) -> QParams {
        if spec.symmetric {
            let am = slice.iter().fold(0.0f32, |a, v| a.max(v.abs()));
            QParams::symmetric(am * alpha, qmax)
        } else {
            let (lo, hi) = slice
                .iter()
                .fold((f32::MAX, f32::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
            QParams::asymmetric(lo * alpha, hi * alpha, qmin, qmax)
        }
    }

    /// Reconstructs the floating-point matrix `(q − z)·s`.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let p = self.params[self.spec.granularity.param_index(i, j, self.cols)];
                out[(i, j)] = p.dequantize(self.codes[i * self.cols + j]);
            }
        }
        out
    }

    /// The quantization recipe used.
    pub fn spec(&self) -> QuantSpec {
        self.spec
    }

    /// `(rows, cols)` of the underlying matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Raw integer codes, row-major.
    pub fn codes(&self) -> &[i32] {
        &self.codes
    }

    /// Scale/zero parameters, indexed per [`Granularity::param_index`].
    pub fn params(&self) -> &[QParams] {
        &self.params
    }

    /// Integer code at `(i, j)`.
    pub fn code(&self, i: usize, j: usize) -> i32 {
        self.codes[i * self.cols + j]
    }

    /// Parameters governing element `(i, j)`.
    pub fn params_at(&self, i: usize, j: usize) -> QParams {
        self.params[self.spec.granularity.param_index(i, j, self.cols)]
    }
}

/// Convenience: round-to-nearest (RTN) quantize-dequantize in one step, the
/// baseline every table in the paper compares against.
pub fn rtn_fake_quant(m: &Matrix, spec: QuantSpec) -> Matrix {
    QuantizedMatrix::quantize(m, spec).dequantize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qserve_tensor::rng::TensorRng;
    use qserve_tensor::stats::{relative_error, sqnr_db};

    #[test]
    fn int8_per_row_round_trip_error_small() {
        let mut rng = TensorRng::seed(1);
        let m = rng.gaussian(16, 64, 1.0);
        let q = QuantizedMatrix::quantize(&m, QuantSpec::int8_symmetric(Granularity::PerRow));
        assert!(relative_error(&m, &q.dequantize()) < 0.01);
    }

    #[test]
    fn codes_within_range() {
        let mut rng = TensorRng::seed(2);
        let m = rng.gaussian(8, 32, 3.0);
        for spec in [
            QuantSpec::int8_symmetric(Granularity::PerRow),
            QuantSpec::int8_protective(Granularity::PerRow),
            QuantSpec::uint4_asymmetric(Granularity::PerGroup { group_size: 8 }),
            QuantSpec::int4_symmetric(Granularity::PerTensor),
        ] {
            let (qmin, qmax) = spec.q_range();
            let q = QuantizedMatrix::quantize(&m, spec);
            assert!(
                q.codes().iter().all(|&c| c >= qmin && c <= qmax),
                "codes out of range for {:?}",
                spec
            );
        }
    }

    #[test]
    fn per_group_beats_per_tensor_on_outliers() {
        let mut rng = TensorRng::seed(3);
        let m = rng.with_outlier_channels(32, 64, 1.0, &[5], 20.0);
        let pt = rtn_fake_quant(&m, QuantSpec::int4_symmetric(Granularity::PerTensor));
        let pg = rtn_fake_quant(
            &m,
            QuantSpec::int4_symmetric(Granularity::PerGroup { group_size: 8 }),
        );
        assert!(
            sqnr_db(&m, &pg) > sqnr_db(&m, &pt) + 3.0,
            "group quantization should win by ≥3 dB on outlier data"
        );
    }

    #[test]
    fn int8_beats_int4() {
        let mut rng = TensorRng::seed(4);
        let m = rng.gaussian(16, 64, 1.0);
        let q8 = rtn_fake_quant(&m, QuantSpec::int8_symmetric(Granularity::PerRow));
        let q4 = rtn_fake_quant(&m, QuantSpec::int4_symmetric(Granularity::PerRow));
        assert!(sqnr_db(&m, &q8) > sqnr_db(&m, &q4) + 10.0);
    }

    #[test]
    fn asymmetric_handles_shifted_data() {
        // All-positive data wastes half the symmetric range; asymmetric wins.
        let mut rng = TensorRng::seed(5);
        let shifted = Matrix::from_vec(
            8,
            32,
            rng.gaussian(8, 32, 0.2).as_slice().iter().map(|v| v + 2.0).collect(),
        );
        let sym = rtn_fake_quant(&shifted, QuantSpec::int4_symmetric(Granularity::PerRow));
        let asym = rtn_fake_quant(&shifted, QuantSpec::uint4_asymmetric(Granularity::PerRow));
        assert!(sqnr_db(&shifted, &asym) > sqnr_db(&shifted, &sym));
    }

    #[test]
    fn clipping_reduces_range() {
        let m = Matrix::from_rows(&[vec![0.1, 0.2, 0.1, -0.15, 10.0]]); // one outlier
        let spec = QuantSpec::int4_symmetric(Granularity::PerRow);
        let clipped = QuantizedMatrix::quantize_clipped(&m, spec, 0.05);
        // With alpha=0.05 the scale is set by 0.5, so small values survive.
        let back = clipped.dequantize();
        assert!((back[(0, 0)] - 0.1).abs() < 0.05);
    }

    #[test]
    fn protective_range_codes_clamped_to_119() {
        let m = Matrix::from_rows(&[vec![1.0, -1.0, 0.5]]);
        let q = QuantizedMatrix::quantize(&m, QuantSpec::int8_protective(Granularity::PerRow));
        assert_eq!(q.code(0, 0), 119);
        assert_eq!(q.code(0, 1), -119);
    }

    #[test]
    fn params_at_matches_granularity() {
        let mut rng = TensorRng::seed(6);
        let m = rng.gaussian(4, 16, 1.0);
        let q = QuantizedMatrix::quantize(
            &m,
            QuantSpec::uint4_asymmetric(Granularity::PerGroup { group_size: 4 }),
        );
        // Elements in the same group share params.
        assert_eq!(q.params_at(2, 0), q.params_at(2, 3));
    }

    #[test]
    fn empty_matrix_ok() {
        let m = Matrix::zeros(0, 0);
        let q = QuantizedMatrix::quantize(&m, QuantSpec::int8_symmetric(Granularity::PerTensor));
        assert_eq!(q.dequantize().shape(), (0, 0));
    }
}
