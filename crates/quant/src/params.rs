//! Scale/zero-point computation (paper Equation 2).
//!
//! `Q_X = ⌈X/s⌋ + z` with `s = (X_max − X_min)/(q_max − q_min)` and
//! `z = ⌈q_min − X_min/s⌋` for asymmetric quantization; symmetric
//! quantization sets `z = 0` and `s = max|X| / q_max`.

use crate::rounding::{round_clamp, round_half_even};

/// A scale/zero-point pair. Dequantization is `(q − z) · s` (Equation 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QParams {
    /// Quantization step size (always positive; 1.0 for an all-zero tensor).
    pub scale: f32,
    /// Integer zero point (0 for symmetric quantization).
    pub zero: i32,
}

impl Default for QParams {
    fn default() -> Self {
        Self { scale: 1.0, zero: 0 }
    }
}

impl QParams {
    /// Symmetric parameters: `s = absmax / qmax`, `z = 0`.
    ///
    /// A zero `absmax` yields scale 1.0 so that dequantization stays finite.
    ///
    /// # Panics
    /// Panics if `qmax <= 0` or `absmax` is negative/NaN.
    pub fn symmetric(absmax: f32, qmax: i32) -> Self {
        assert!(qmax > 0, "symmetric qmax must be positive");
        assert!(absmax >= 0.0, "absmax must be non-negative, got {absmax}");
        let scale = if absmax.abs().to_bits() == 0 { 1.0 } else { absmax / qmax as f32 };
        Self { scale, zero: 0 }
    }

    /// Asymmetric parameters from a `[min, max]` range onto `[qmin, qmax]`.
    ///
    /// The range is first widened to include zero (standard practice so that
    /// zero is exactly representable).
    ///
    /// # Panics
    /// Panics if `qmin >= qmax` or `min > max`.
    pub fn asymmetric(min: f32, max: f32, qmin: i32, qmax: i32) -> Self {
        assert!(qmin < qmax, "invalid integer range");
        assert!(min <= max, "invalid float range {min}..{max}");
        let lo = min.min(0.0);
        let hi = max.max(0.0);
        let scale = if hi == lo {
            1.0
        } else {
            (hi - lo) / (qmax - qmin) as f32
        };
        let zero = round_half_even(qmin as f32 - lo / scale).clamp(qmin, qmax);
        Self { scale, zero }
    }

    /// Quantizes one value: `clamp(⌈x/s⌋ + z, qmin, qmax)`.
    pub fn quantize(&self, x: f32, qmin: i32, qmax: i32) -> i32 {
        round_clamp(x / self.scale + self.zero as f32, qmin, qmax)
    }

    /// Dequantizes one value: `(q − z)·s`.
    pub fn dequantize(&self, q: i32) -> f32 {
        (q - self.zero) as f32 * self.scale
    }
}

/// Asymmetric integer-to-integer re-quantization parameters, the second level
/// of QoQ's progressive scheme (§4.1, Equation 5): maps signed 8-bit values
/// onto `[0, 15]` with an *integer* scale `s ∈ [1, 17]` (stored as u8 on GPU)
/// and *integer* zero point `z ∈ [0, 15]` (stored as u4).
///
/// The worked example in Figure 6: a group spanning `[-16, 15]` gets
/// `s = ⌈(15−(−16))/15⌋ = 2` and `z = ⌈−(−16)/2⌋ = 8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntQParams {
    /// Unsigned 8-bit group scale `s⁽¹⁾` (≥ 1).
    pub scale: u8,
    /// Unsigned 4-bit zero point.
    pub zero: u8,
}

impl Default for IntQParams {
    fn default() -> Self {
        Self { scale: 1, zero: 0 }
    }
}

impl IntQParams {
    /// Derives the level-2 parameters for a group of signed 8-bit values,
    /// following the paper's formulas:
    /// `s⁽¹⁾ = ⌈(q⁽⁰⁾max − q⁽⁰⁾min)/(qmax − qmin)⌋`, `z = ⌈−q⁽⁰⁾min/s⁽¹⁾⌋`.
    pub fn from_group(group: &[i8]) -> Self {
        let (mut lo, mut hi) = (0i32, 0i32);
        for &v in group {
            lo = lo.min(i32::from(v));
            hi = hi.max(i32::from(v));
        }
        let scale = round_half_even((hi - lo) as f32 / 15.0).max(1);
        let zero = round_half_even(-(lo as f32) / scale as f32).clamp(0, 15);
        Self {
            scale: scale as u8,
            zero: zero as u8,
        }
    }

    /// Quantizes a signed 8-bit value to unsigned 4-bit:
    /// `clamp(⌈q⁽⁰⁾/s⌋ + z, 0, 15)`.
    pub fn quantize(&self, q0: i8) -> u8 {
        round_half_even(f32::from(q0) / f32::from(self.scale) + f32::from(self.zero)).clamp(0, 15)
            as u8
    }

    /// Dequantizes unsigned 4-bit back to signed 8-bit *without saturation*:
    /// `(q − z)·s`. The caller (progressive quantization) must have
    /// guaranteed this stays within `[-128, 127]` via the protective range.
    ///
    /// # Panics
    /// Debug-panics if the result overflows i8 — that is exactly the
    /// condition the protective range rules out.
    pub fn dequantize(&self, q: u8) -> i8 {
        let v = (i32::from(q) - i32::from(self.zero)) * i32::from(self.scale);
        debug_assert!(
            (-128..=127).contains(&v),
            "level-2 dequantization overflowed i8: ({} - {}) * {} = {}",
            q,
            self.zero,
            self.scale,
            v
        );
        v as i8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_scale() {
        let p = QParams::symmetric(12.7, 127);
        assert!((p.scale - 0.1).abs() < 1e-6);
        assert_eq!(p.zero, 0);
    }

    #[test]
    fn symmetric_zero_absmax_is_safe() {
        let p = QParams::symmetric(0.0, 127);
        assert_eq!(p.quantize(0.0, -127, 127), 0);
        assert_eq!(p.dequantize(0), 0.0);
    }

    #[test]
    fn asymmetric_round_trip_endpoints() {
        let p = QParams::asymmetric(-1.0, 3.0, 0, 15);
        let qlo = p.quantize(-1.0, 0, 15);
        let qhi = p.quantize(3.0, 0, 15);
        assert_eq!(qlo, 0);
        assert_eq!(qhi, 15);
        assert!((p.dequantize(qlo) - -1.0).abs() < p.scale);
        assert!((p.dequantize(qhi) - 3.0).abs() < p.scale);
    }

    #[test]
    fn asymmetric_zero_exactly_representable() {
        let p = QParams::asymmetric(0.5, 3.0, 0, 15);
        // Range widened to [0, 3]; zero must map to an integer exactly.
        let q0 = p.quantize(0.0, 0, 15);
        assert_eq!(p.dequantize(q0), 0.0);
    }

    #[test]
    fn quantize_clamps() {
        let p = QParams::symmetric(1.0, 127);
        assert_eq!(p.quantize(10.0, -127, 127), 127);
        assert_eq!(p.quantize(-10.0, -127, 127), -127);
    }

    #[test]
    fn int_qparams_paper_example() {
        // Figure 6: group min/max after INT8 quant = [-16, 15]
        // (values -16 and 15 present in the group).
        let group: Vec<i8> = vec![-16, 15, 0, -9];
        let p = IntQParams::from_group(&group);
        assert_eq!(p.scale, 2);
        assert_eq!(p.zero, 8);
        // q(-3) = ⌈-3/2 + 8⌋ = ⌈6.5⌋ = 6 (ties to even) — paper shows 7 with
        // round-half-up; both are within half an ulp. Check dequant bound:
        let q = p.quantize(-3);
        let back = p.dequantize(q);
        assert!((i32::from(back) - (-3i32)).abs() <= i32::from(p.scale));
    }

    #[test]
    fn int_qparams_protective_range_never_overflows() {
        // For any group of values in [-119, 119] (the protective range),
        // dequantization must stay within [-128, 127].
        for lo in -119i32..=-100 {
            for hi in 100i32..=119 {
                let group: Vec<i8> = vec![lo as i8, hi as i8, 0, 57, -33];
                let p = IntQParams::from_group(&group);
                for &g in &group {
                    let q = p.quantize(g);
                    let v = (i32::from(q) - i32::from(p.zero)) * i32::from(p.scale);
                    assert!(
                        (-128..=127).contains(&v),
                        "overflow for group [{}, {}]: {}",
                        lo,
                        hi,
                        v
                    );
                }
            }
        }
    }

    #[test]
    fn int_qparams_overflow_without_protection() {
        // The paper's counterexample (§4.1): range [-113, 120] yields s=16,
        // z=7, and 120 → 15 → (15-7)*16 = 128 which overflows INT8. Verify
        // our primitives reproduce the phenomenon the protective range fixes.
        let group: Vec<i8> = vec![-113, 120];
        let p = IntQParams::from_group(&group);
        assert_eq!(p.scale, 16);
        assert_eq!(p.zero, 7);
        // The representable top of the 4-bit code space dequantizes past the
        // INT8 maximum: (15 − 7)·16 = 128 > 127. (The paper's worked example
        // reaches code 15 via round-half-up; with ties-to-even 120 lands on
        // 14, but the representable-range overflow is identical.)
        let raw = (15 - i32::from(p.zero)) * i32::from(p.scale);
        assert_eq!(raw, 128, "this is the overflow the protective range prevents");
    }

    #[test]
    fn int_qparams_all_zero_group() {
        let p = IntQParams::from_group(&[0, 0, 0]);
        assert_eq!(p.scale, 1);
        assert_eq!(p.zero, 0);
        assert_eq!(p.dequantize(p.quantize(0)), 0);
    }
}
