//! Integer quantization primitives (paper §2.2).
//!
//! Implements the textbook machinery Equation 2/3 of the paper builds on:
//!
//! * [`rounding`] — round-to-nearest-even, the `⌈·⌋` operator in the paper.
//! * [`params`] — scale/zero-point computation for symmetric and asymmetric
//!   quantization over arbitrary integer ranges.
//! * [`matrixq`] — applying a [`QuantSpec`] (bits × symmetry × granularity)
//!   to a whole matrix: per-tensor, per-row (= per-channel for weights,
//!   per-token for activations), and per-group.
//!
//! The QoQ-specific *progressive* two-level scheme lives in `qserve-core`;
//! this crate supplies the reusable single-level pieces plus the
//! round-to-nearest plumbing every level shares.
//!
//! # Example
//!
//! ```
//! use qserve_quant::{QuantSpec, Granularity, matrixq::QuantizedMatrix};
//! use qserve_tensor::Matrix;
//!
//! let w = Matrix::from_rows(&[vec![0.1, -0.5, 0.4, 0.2]]);
//! let spec = QuantSpec::int8_symmetric(Granularity::PerRow);
//! let qw = QuantizedMatrix::quantize(&w, spec);
//! let back = qw.dequantize();
//! assert!(qserve_tensor::stats::relative_error(&w, &back) < 0.01);
//! ```

pub mod matrixq;
pub mod params;
pub mod rounding;

pub use matrixq::QuantizedMatrix;
pub use params::QParams;


/// How scale/zero parameters are shared across a tensor (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// One `(s, z)` for the whole tensor.
    PerTensor,
    /// One `(s, z)` per row — per-channel for `n×k` weights, per-token for
    /// `m×k` activations.
    PerRow,
    /// One `(s, z)` for every `group_size` columns within each row.
    PerGroup {
        /// Number of columns sharing one scale (the paper uses g = 128).
        group_size: usize,
    },
}

impl Granularity {
    /// Number of parameter sets needed for a `rows × cols` tensor.
    ///
    /// # Panics
    /// Panics if `PerGroup` does not divide `cols`.
    pub fn param_count(self, rows: usize, cols: usize) -> usize {
        match self {
            Granularity::PerTensor => 1,
            Granularity::PerRow => rows,
            Granularity::PerGroup { group_size } => {
                assert!(
                    group_size > 0 && cols % group_size == 0,
                    "group size {} must divide cols {}",
                    group_size,
                    cols
                );
                rows * (cols / group_size)
            }
        }
    }

    /// Index of the parameter set governing element `(i, j)`.
    pub fn param_index(self, i: usize, j: usize, cols: usize) -> usize {
        match self {
            Granularity::PerTensor => 0,
            Granularity::PerRow => i,
            Granularity::PerGroup { group_size } => i * (cols / group_size) + j / group_size,
        }
    }
}

/// A complete single-level quantization recipe: bit width, symmetry,
/// signedness and granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantSpec {
    /// Bit width (4 or 8 in the paper; any 2..=16 supported).
    pub bits: u8,
    /// Symmetric (`z = 0`) vs asymmetric quantization.
    pub symmetric: bool,
    /// Signed (`[-2^(b-1)+1, 2^(b-1)-1]` symmetric / `[-2^(b-1), 2^(b-1)-1]`
    /// asymmetric) vs unsigned (`[0, 2^b - 1]`) integer range.
    pub signed: bool,
    /// Parameter sharing granularity.
    pub granularity: Granularity,
    /// Optional clamp on the representable integer magnitude, used by QoQ's
    /// protective range: INT8 symmetric with `range_clamp = 119` quantizes
    /// into `[-119, 119]` instead of `[-127, 127]` (§4.1).
    pub range_clamp: Option<i32>,
}

impl QuantSpec {
    /// Symmetric signed INT8 (`[-127, 127]`).
    pub fn int8_symmetric(granularity: Granularity) -> Self {
        Self {
            bits: 8,
            symmetric: true,
            signed: true,
            granularity,
            range_clamp: None,
        }
    }

    /// Symmetric signed INT8 with QoQ's protective range `[-119, 119]` (§4.1).
    pub fn int8_protective(granularity: Granularity) -> Self {
        Self {
            bits: 8,
            symmetric: true,
            signed: true,
            granularity,
            range_clamp: Some(119),
        }
    }

    /// Asymmetric unsigned INT4 (`[0, 15]`), the paper's weight/KV 4-bit format.
    pub fn uint4_asymmetric(granularity: Granularity) -> Self {
        Self {
            bits: 4,
            symmetric: false,
            signed: false,
            granularity,
            range_clamp: None,
        }
    }

    /// Symmetric signed INT4 (`[-7, 7]`), used by W4A4 baselines.
    pub fn int4_symmetric(granularity: Granularity) -> Self {
        Self {
            bits: 4,
            symmetric: true,
            signed: true,
            granularity,
            range_clamp: None,
        }
    }

    /// Inclusive integer range `(qmin, qmax)` of this spec.
    pub fn q_range(&self) -> (i32, i32) {
        let (mut qmin, mut qmax) = if self.signed {
            let half = 1i32 << (self.bits - 1);
            if self.symmetric {
                (-(half - 1), half - 1)
            } else {
                (-half, half - 1)
            }
        } else {
            (0, (1i32 << self.bits) - 1)
        };
        if let Some(clamp) = self.range_clamp {
            qmax = qmax.min(clamp);
            if self.signed {
                qmin = qmin.max(-clamp);
            }
        }
        (qmin, qmax)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_range_int8_symmetric() {
        assert_eq!(
            QuantSpec::int8_symmetric(Granularity::PerTensor).q_range(),
            (-127, 127)
        );
    }

    #[test]
    fn q_range_protective() {
        assert_eq!(
            QuantSpec::int8_protective(Granularity::PerTensor).q_range(),
            (-119, 119)
        );
    }

    #[test]
    fn q_range_uint4() {
        assert_eq!(
            QuantSpec::uint4_asymmetric(Granularity::PerTensor).q_range(),
            (0, 15)
        );
    }

    #[test]
    fn q_range_int4_symmetric() {
        assert_eq!(
            QuantSpec::int4_symmetric(Granularity::PerTensor).q_range(),
            (-7, 7)
        );
    }

    #[test]
    fn param_count_per_group() {
        let g = Granularity::PerGroup { group_size: 128 };
        assert_eq!(g.param_count(4, 512), 16);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn param_count_rejects_non_divisible_group() {
        Granularity::PerGroup { group_size: 128 }.param_count(4, 100);
    }

    #[test]
    fn param_index_layout() {
        let g = Granularity::PerGroup { group_size: 4 };
        assert_eq!(g.param_index(0, 0, 8), 0);
        assert_eq!(g.param_index(0, 5, 8), 1);
        assert_eq!(g.param_index(2, 3, 8), 4);
        assert_eq!(Granularity::PerRow.param_index(3, 7, 8), 3);
        assert_eq!(Granularity::PerTensor.param_index(3, 7, 8), 0);
    }
}
