//! Round-to-nearest, the `⌈·⌋` operator in the paper's equations.
//!
//! NVIDIA's float→int conversions (`__float2int_rn`, `cvt.rni`) round to the
//! nearest integer with ties to even; quantization code paths in this
//! repository all go through [`round_half_even`] so the emulated kernels and
//! the reference algorithm agree bit-for-bit.

/// Rounds to the nearest integer, ties to even (banker's rounding).
///
/// # Example
/// ```
/// use qserve_quant::rounding::round_half_even;
/// assert_eq!(round_half_even(2.5), 2);
/// assert_eq!(round_half_even(3.5), 4);
/// assert_eq!(round_half_even(-2.5), -2);
/// assert_eq!(round_half_even(2.4), 2);
/// ```
pub fn round_half_even(x: f32) -> i32 {
    // `f32::round_ties_even` exists but we spell it out so the semantics are
    // locked down independent of std changes.
    let floor = x.floor();
    let diff = x - floor;
    let f = floor as i64;
    let r = if diff > 0.5 {
        f + 1
    } else if diff < 0.5 {
        f
    } else if f % 2 == 0 {
        f
    } else {
        f + 1
    };
    r.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32
}

/// Rounds and clamps to an inclusive integer range, the full quantization
/// step `clamp(⌈x/s⌋ + z, qmin, qmax)`.
pub fn round_clamp(x: f32, qmin: i32, qmax: i32) -> i32 {
    round_half_even(x).clamp(qmin, qmax)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_to_nearest() {
        assert_eq!(round_half_even(1.4), 1);
        assert_eq!(round_half_even(1.6), 2);
        assert_eq!(round_half_even(-1.4), -1);
        assert_eq!(round_half_even(-1.6), -2);
    }

    #[test]
    fn ties_to_even() {
        assert_eq!(round_half_even(0.5), 0);
        assert_eq!(round_half_even(1.5), 2);
        assert_eq!(round_half_even(-0.5), 0);
        assert_eq!(round_half_even(-1.5), -2);
        assert_eq!(round_half_even(-3.5), -4);
    }

    #[test]
    fn integers_unchanged() {
        for i in -100..=100 {
            assert_eq!(round_half_even(i as f32), i);
        }
    }

    #[test]
    fn clamping() {
        assert_eq!(round_clamp(200.0, -127, 127), 127);
        assert_eq!(round_clamp(-200.0, -127, 127), -127);
        assert_eq!(round_clamp(7.4, 0, 15), 7);
    }

    #[test]
    fn matches_std_ties_even() {
        for i in 0..10_000 {
            let x = (i as f32 - 5000.0) * 0.137;
            assert_eq!(round_half_even(x), x.round_ties_even() as i32, "x = {}", x);
        }
    }
}
