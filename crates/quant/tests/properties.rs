//! Property tests of the quantization primitives.

use qserve_quant::matrixq::QuantizedMatrix;
use qserve_quant::params::{IntQParams, QParams};
use qserve_quant::rounding::round_half_even;
use qserve_quant::{Granularity, QuantSpec};
use qserve_tensor::{prop, props, props_assume, Matrix};

props! {
    /// Quantize→dequantize error is within half a step for unclipped values.
    fn round_trip_within_half_step(rng) {
        let x = rng.uniform(-100.0, 100.0);
        let absmax = rng.uniform(100.0, 200.0);
        let p = QParams::symmetric(absmax, 127);
        let q = p.quantize(x, -127, 127);
        let back = p.dequantize(q);
        assert!((x - back).abs() <= p.scale * 0.5 + 1e-4);
    }

    /// Asymmetric params always map zero to an exactly-representable code.
    fn zero_exactly_representable(rng) {
        let lo = rng.uniform(-50.0, 0.0);
        let hi = rng.uniform(0.0, 50.0);
        props_assume!(hi > lo);
        let p = QParams::asymmetric(lo, hi, 0, 15);
        let q0 = p.quantize(0.0, 0, 15);
        assert_eq!(p.dequantize(q0), 0.0);
    }

    /// Quantization is monotone: x ≤ y ⇒ q(x) ≤ q(y).
    fn quantization_monotone(rng) {
        let x = rng.uniform(-10.0, 10.0);
        let y = rng.uniform(-10.0, 10.0);
        let absmax = rng.uniform(5.0, 20.0);
        let p = QParams::symmetric(absmax, 127);
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        assert!(p.quantize(lo, -127, 127) <= p.quantize(hi, -127, 127));
    }

    /// Rounding is antisymmetric for non-tie inputs and matches std.
    fn rounding_matches_std(rng) {
        let x = rng.uniform(-1e6, 1e6);
        assert_eq!(round_half_even(x), x.round_ties_even() as i32);
    }

    /// Matrix quantization codes never leave the spec's range, under every
    /// granularity.
    fn codes_always_in_range(rng) {
        let vals = prop::vec_f32(rng, -20.0, 20.0, 4 * 16);
        let which = rng.index(4);
        let m = Matrix::from_vec(4, 16, vals);
        let spec = match which {
            0 => QuantSpec::int8_symmetric(Granularity::PerTensor),
            1 => QuantSpec::int8_protective(Granularity::PerRow),
            2 => QuantSpec::uint4_asymmetric(Granularity::PerGroup { group_size: 4 }),
            _ => QuantSpec::int4_symmetric(Granularity::PerRow),
        };
        let (qmin, qmax) = spec.q_range();
        let q = QuantizedMatrix::quantize(&m, spec);
        assert!(q.codes().iter().all(|&c| (qmin..=qmax).contains(&c)));
    }

    /// Finer granularity does not dominate pointwise (a value can round
    /// worse under a smaller scale — property testing found such a case),
    /// but every per-group error is bounded by the *coarse* (per-row) step:
    /// the group range never exceeds the row range, so
    /// `scale_fine ≤ scale_coarse`, and asymmetric round-trip error ≤ one
    /// scale (value + zero rounding).
    fn finer_granularity_error_bounded_by_coarse_step(rng) {
        let vals = prop::vec_f32(rng, -20.0, 20.0, 2 * 16);
        let m = Matrix::from_vec(2, 16, vals);
        let coarse = QuantizedMatrix::quantize(
            &m,
            QuantSpec::uint4_asymmetric(Granularity::PerRow),
        );
        let fine = QuantizedMatrix::quantize(
            &m,
            QuantSpec::uint4_asymmetric(Granularity::PerGroup { group_size: 4 }),
        )
        .dequantize();
        for i in 0..2 {
            let row_scale = coarse.params_at(i, 0).scale;
            for j in 0..16 {
                let err = (m[(i, j)] - fine[(i, j)]).abs();
                assert!(
                    err <= row_scale + 1e-4,
                    "err {} > coarse scale {} at ({}, {})",
                    err,
                    row_scale,
                    i,
                    j
                );
            }
        }
    }

    /// Level-2 integer params: for inputs already in the protective range,
    /// dequantization of any produced code stays within INT8 (the §4.1
    /// guarantee, at the primitive level).
    fn level2_never_overflows_protective_inputs(rng) {
        let vals = prop::vec_i32(rng, -119, 119, 16);
        let group: Vec<i8> = vals.iter().map(|&v| v as i8).collect();
        let p = IntQParams::from_group(&group);
        for &g in &group {
            let q = p.quantize(g);
            let v = (i32::from(q) - i32::from(p.zero)) * i32::from(p.scale);
            assert!((-128..=127).contains(&v), "{} → {} → {}", g, q, v);
        }
    }

    /// Level-2 round trip error is within one level-1 step of the input,
    /// plus the scale-round-down slack.
    fn level2_round_trip_bounded(rng) {
        let vals = prop::vec_i32(rng, -119, 119, 8);
        let group: Vec<i8> = vals.iter().map(|&v| v as i8).collect();
        let p = IntQParams::from_group(&group);
        for &g in &group {
            let back = i32::from(p.dequantize(p.quantize(g)));
            let err = (i32::from(g) - back).abs();
            assert!(
                err <= i32::from(p.scale) + 8,
                "err {} for scale {}",
                err,
                p.scale
            );
        }
    }
}
