//! Row-major dense `f32` matrix.
//!
//! LLM linear layers compute `Y = X Wᵀ` where `X` is `m×k` (tokens ×
//! input channels) and `W` is `n×k` (output channels × input channels), the
//! layout used throughout the paper (Figure 4). [`Matrix::matmul_nt`]
//! implements exactly that contraction; [`Matrix::matmul_nn`] is the plain
//! row×column product used for attention scores.

use std::fmt;

/// A dense row-major `f32` matrix.
///
/// The storage is a flat `Vec<f32>` of length `rows * cols`; element `(i, j)`
/// lives at `data[i * cols + j]`.
///
/// # Example
///
/// ```
/// use qserve_tensor::Matrix;
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.rows(), 2);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    ///
    /// # Panics
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        Self {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates the `n×n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.data[i * cols + j] = f(i, j);
            }
        }
        m
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "inconsistent row lengths");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the flat storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "row {} out of bounds ({})", i, self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.rows, "row {} out of bounds ({})", i, self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f32> {
        assert!(j < self.cols, "col {} out of bounds ({})", j, self.cols);
        (0..self.rows).map(|i| self.data[i * self.cols + j]).collect()
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// `Y = self · other` (row × column), shapes `m×k · k×n → m×n`.
    ///
    /// # Panics
    /// Panics if `self.cols != other.rows`.
    pub fn matmul_nn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul_nn shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let xi = &self.data[i * k..(i + 1) * k];
            let oi = &mut out.data[i * n..(i + 1) * n];
            for (p, &x) in xi.iter().enumerate() {
                if x.abs().to_bits() == 0 {
                    continue;
                }
                let wr = &other.data[p * n..(p + 1) * n];
                for (o, &w) in oi.iter_mut().zip(wr.iter()) {
                    *o += x * w;
                }
            }
        }
        out
    }

    /// `Y = self · otherᵀ`, shapes `m×k · (n×k)ᵀ → m×n`.
    ///
    /// This is the LLM linear-layer contraction from Figure 4 of the paper:
    /// `X` holds one token per row, `W` holds one output channel per row, and
    /// both share the reduction (input-channel) dimension `k`.
    ///
    /// # Panics
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt reduction mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let xi = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let wj = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (a, b) in xi.iter().zip(wj.iter()) {
                    acc += a * b;
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// `Y = self · otherᵀ` accumulated in `f64` for use as a ground-truth
    /// reference in kernel bit-exactness tests.
    pub fn matmul_nt_f64(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt_f64 reduction mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let xi = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let wj = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f64;
                for (a, b) in xi.iter().zip(wj.iter()) {
                    acc += f64::from(*a) * f64::from(*b);
                }
                out.data[i * n + j] = acc as f32;
            }
        }
        out
    }

    /// Element-wise addition.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise subtraction.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scales column `j` of every row by `factors[j]`.
    ///
    /// # Panics
    /// Panics if `factors.len() != cols`.
    pub fn scale_cols(&self, factors: &[f32]) -> Matrix {
        assert_eq!(factors.len(), self.cols, "scale_cols length mismatch");
        let mut out = self.clone();
        for i in 0..self.rows {
            let r = out.row_mut(i);
            for (v, &f) in r.iter_mut().zip(factors.iter()) {
                *v *= f;
            }
        }
        out
    }

    /// Scales row `i` by `factors[i]`.
    ///
    /// # Panics
    /// Panics if `factors.len() != rows`.
    pub fn scale_rows(&self, factors: &[f32]) -> Matrix {
        assert_eq!(factors.len(), self.rows, "scale_rows length mismatch");
        let mut out = self.clone();
        for (i, &f) in factors.iter().enumerate() {
            for v in out.row_mut(i) {
                *v *= f;
            }
        }
        out
    }

    /// Reorders columns so output column `j` is input column `perm[j]`.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..cols`.
    pub fn permute_cols(&self, perm: &[usize]) -> Matrix {
        assert_eq!(perm.len(), self.cols, "perm length mismatch");
        let mut seen = vec![false; self.cols];
        for &p in perm {
            assert!(p < self.cols && !seen[p], "perm is not a permutation");
            seen[p] = true;
        }
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let src = self.row(i);
            let dst = out.row_mut(i);
            for (j, &p) in perm.iter().enumerate() {
                dst[j] = src[p];
            }
        }
        out
    }

    /// Extracts rows `r0..r1` as a new matrix.
    ///
    /// # Panics
    /// Panics if `r0 > r1` or `r1 > rows`.
    pub fn slice_rows(&self, r0: usize, r1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows, "slice_rows out of bounds");
        Matrix {
            rows: r1 - r0,
            cols: self.cols,
            data: self.data[r0 * self.cols..r1 * self.cols].to_vec(),
        }
    }

    /// Extracts columns `c0..c1` as a new matrix.
    ///
    /// # Panics
    /// Panics if `c0 > c1` or `c1 > cols`.
    pub fn slice_cols(&self, c0: usize, c1: usize) -> Matrix {
        assert!(c0 <= c1 && c1 <= self.cols, "slice_cols out of bounds");
        let mut out = Matrix::zeros(self.rows, c1 - c0);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[c0..c1]);
        }
        out
    }

    /// Stacks `mats` vertically (all must share the column count).
    ///
    /// # Panics
    /// Panics if column counts differ or `mats` is empty.
    pub fn vcat(mats: &[&Matrix]) -> Matrix {
        assert!(!mats.is_empty(), "vcat of zero matrices");
        let cols = mats[0].cols;
        let mut data = Vec::new();
        let mut rows = 0;
        for m in mats {
            assert_eq!(m.cols, cols, "vcat column mismatch");
            data.extend_from_slice(&m.data);
            rows += m.rows;
        }
        Matrix { rows, cols, data }
    }

    /// Maximum absolute element, 0 for an empty matrix.
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|v| f64::from(*v) * f64::from(*v))
            .sum::<f64>()
            .sqrt() as f32
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v.abs().to_bits() == 0));
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let x = Matrix::from_fn(3, 3, |i, j| (i + 2 * j) as f32);
        let id = Matrix::eye(3);
        assert_eq!(x.matmul_nn(&id), x);
        assert_eq!(id.matmul_nn(&x), x);
    }

    #[test]
    fn matmul_nt_matches_manual() {
        // X = [[1,2],[3,4]], W = [[5,6],[7,8]] (rows are output channels)
        // Y[i][j] = X[i]·W[j]
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let w = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let y = x.matmul_nt(&w);
        assert_eq!(y.as_slice(), &[17.0, 23.0, 39.0, 53.0]);
    }

    #[test]
    fn matmul_nt_equals_nn_with_transpose() {
        let x = Matrix::from_fn(4, 6, |i, j| (i as f32 - j as f32) * 0.5);
        let w = Matrix::from_fn(5, 6, |i, j| (i * j) as f32 * 0.1);
        let a = x.matmul_nt(&w);
        let b = x.matmul_nn(&w.transpose());
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f32);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn permute_cols_round_trip() {
        let m = Matrix::from_fn(2, 4, |i, j| (i * 4 + j) as f32);
        let perm = vec![2, 0, 3, 1];
        let p = m.permute_cols(&perm);
        // invert the permutation
        let mut inv = vec![0usize; 4];
        for (j, &pj) in perm.iter().enumerate() {
            inv[pj] = j;
        }
        assert_eq!(p.permute_cols(&inv), m);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permute_cols_rejects_duplicates() {
        let m = Matrix::zeros(1, 3);
        m.permute_cols(&[0, 0, 2]);
    }

    #[test]
    fn scale_rows_and_cols() {
        let m = Matrix::full(2, 2, 1.0);
        let r = m.scale_rows(&[2.0, 3.0]);
        assert_eq!(r.as_slice(), &[2.0, 2.0, 3.0, 3.0]);
        let c = m.scale_cols(&[2.0, 3.0]);
        assert_eq!(c.as_slice(), &[2.0, 3.0, 2.0, 3.0]);
    }

    #[test]
    fn slice_rows_and_cols() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f32);
        let s = m.slice_rows(1, 3);
        assert_eq!(s.shape(), (2, 4));
        assert_eq!(s[(0, 0)], 4.0);
        let c = m.slice_cols(2, 4);
        assert_eq!(c.shape(), (4, 2));
        assert_eq!(c[(0, 0)], 2.0);
    }

    #[test]
    fn vcat_stacks() {
        let a = Matrix::full(1, 2, 1.0);
        let b = Matrix::full(2, 2, 2.0);
        let v = Matrix::vcat(&[&a, &b]);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[2.0, 2.0]);
    }

    #[test]
    fn abs_max_and_norm() {
        let m = Matrix::from_rows(&[vec![-3.0, 4.0]]);
        assert_eq!(m.abs_max(), 4.0);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn col_extraction() {
        let m = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f32);
        assert_eq!(m.col(1), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_rejects_shape_mismatch() {
        let _ = Matrix::zeros(2, 2).add(&Matrix::zeros(2, 3));
    }
}
