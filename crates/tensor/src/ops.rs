//! Transformer primitives: softmax, RMSNorm, RoPE, SiLU/SwiGLU.
//!
//! These implement the block structure described in §2.1 of the paper: each
//! layer is attention + FFN + normalization, queries/keys get rotary position
//! embeddings (RoPE), and the FFN uses a gated activation.

use crate::matrix::Matrix;

/// Numerically-stable softmax over a slice, in place.
///
/// Subtracts the max before exponentiating so that large attention logits do
/// not overflow.
///
/// # Example
/// ```
/// let mut v = vec![1.0f32, 2.0, 3.0];
/// qserve_tensor::ops::softmax_inplace(&mut v);
/// assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-6);
/// assert!(v[2] > v[1] && v[1] > v[0]);
/// ```
pub fn softmax_inplace(v: &mut [f32]) {
    if v.is_empty() {
        return;
    }
    let max = v.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in v.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
    }
}

/// Row-wise softmax of a matrix (e.g. attention scores).
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for i in 0..out.rows() {
        softmax_inplace(out.row_mut(i));
    }
    out
}

/// RMS normalization of each row: `x / sqrt(mean(x²) + eps) * gain`.
///
/// # Panics
/// Panics if `gain.len() != x.cols()`.
pub fn rmsnorm(x: &Matrix, gain: &[f32], eps: f32) -> Matrix {
    assert_eq!(gain.len(), x.cols(), "rmsnorm gain length mismatch");
    let mut out = x.clone();
    let cols = x.cols();
    for i in 0..x.rows() {
        let row = out.row_mut(i);
        let ms: f32 =
            row.iter().map(|v| f64::from(*v) * f64::from(*v)).sum::<f64>() as f32 / cols as f32;
        let inv = 1.0 / (ms + eps).sqrt();
        for (v, &g) in row.iter_mut().zip(gain.iter()) {
            *v = *v * inv * g;
        }
    }
    out
}

/// SiLU (sigmoid-weighted linear unit): `x * sigmoid(x)`.
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// SwiGLU gating: `silu(gate) * up`, applied element-wise.
///
/// This is the FFN activation used by every Llama-family model in the paper's
/// evaluation (§6.2). The second FFN GEMM consumes its output, which is why
/// QServe fuses activation quantization into this kernel (§5.1).
///
/// # Panics
/// Panics on shape mismatch.
pub fn swiglu(gate: &Matrix, up: &Matrix) -> Matrix {
    assert_eq!(gate.shape(), up.shape(), "swiglu shape mismatch");
    let data: Vec<f32> = gate
        .as_slice()
        .iter()
        .zip(up.as_slice())
        .map(|(&g, &u)| silu(g) * u)
        .collect();
    Matrix::from_vec(gate.rows(), gate.cols(), data)
}

/// Rotary positional embedding over one head's feature slice, in place.
///
/// Pairs channel `i` with channel `i + d/2` within the head (the "rotate-half"
/// convention used by Llama), rotating each pair by `pos·θᵢ` where
/// `θᵢ = base^(-2i/d)`. §4.2 of the paper relies on this pairing: the
/// SmoothAttention scale must satisfy `λᵢ = λᵢ₊d/₂` to commute with RoPE.
///
/// # Panics
/// Panics if `head.len()` is odd.
pub fn rope_inplace(head: &mut [f32], pos: usize, base: f32) {
    let d = head.len();
    assert!(d % 2 == 0, "RoPE head dimension must be even");
    let half = d / 2;
    for i in 0..half {
        let theta = base.powf(-2.0 * i as f32 / d as f32);
        let angle = pos as f32 * theta;
        let (sin, cos) = angle.sin_cos();
        let a = head[i];
        let b = head[i + half];
        head[i] = a * cos - b * sin;
        head[i + half] = a * sin + b * cos;
    }
}

/// Applies RoPE to every head of every row of a `tokens × (heads·head_dim)`
/// matrix, where row `t` is at position `pos_offset + t`.
///
/// # Panics
/// Panics if `x.cols()` is not a multiple of `head_dim`.
pub fn rope_matrix(x: &mut Matrix, head_dim: usize, pos_offset: usize, base: f32) {
    assert!(
        x.cols() % head_dim == 0,
        "cols {} not a multiple of head_dim {}",
        x.cols(),
        head_dim
    );
    let heads = x.cols() / head_dim;
    for t in 0..x.rows() {
        let row = x.row_mut(t);
        for h in 0..heads {
            rope_inplace(&mut row[h * head_dim..(h + 1) * head_dim], pos_offset + t, base);
        }
    }
}

/// Single-query attention: `softmax(q Kᵀ / sqrt(d)) V`.
///
/// `q` has length `d`; `keys` and `values` are `seq × d`. Returns the output
/// vector of length `d`. This is the reference the KV4 attention kernel
/// (`qserve-kernels`) is checked against.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn attention_single(q: &[f32], keys: &Matrix, values: &Matrix) -> Vec<f32> {
    assert_eq!(q.len(), keys.cols(), "q/K dim mismatch");
    assert_eq!(keys.shape(), values.shape(), "K/V shape mismatch");
    let d = q.len();
    let seq = keys.rows();
    let scale = 1.0 / (d as f32).sqrt();
    let mut scores = Vec::with_capacity(seq);
    for s in 0..seq {
        let k = keys.row(s);
        let dot: f32 = q.iter().zip(k).map(|(a, b)| a * b).sum();
        scores.push(dot * scale);
    }
    softmax_inplace(&mut scores);
    let mut out = vec![0.0f32; d];
    for (s, &p) in scores.iter().enumerate() {
        let v = values.row(s);
        for (o, &x) in out.iter_mut().zip(v) {
            *o += p * x;
        }
    }
    out
}

/// Causal multi-token attention for prefill: row `t` of `q` attends to key
/// rows `0..=t`. All matrices are `seq × d` for a single head.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn attention_causal(q: &Matrix, keys: &Matrix, values: &Matrix) -> Matrix {
    assert_eq!(q.cols(), keys.cols(), "q/K dim mismatch");
    assert_eq!(keys.shape(), values.shape(), "K/V shape mismatch");
    assert_eq!(q.rows(), keys.rows(), "causal attention needs equal seq lens");
    let d = q.cols();
    let scale = 1.0 / (d as f32).sqrt();
    let mut out = Matrix::zeros(q.rows(), d);
    for t in 0..q.rows() {
        let qr = q.row(t);
        let mut scores = Vec::with_capacity(t + 1);
        for s in 0..=t {
            let dot: f32 = qr.iter().zip(keys.row(s)).map(|(a, b)| a * b).sum();
            scores.push(dot * scale);
        }
        softmax_inplace(&mut scores);
        let orow = out.row_mut(t);
        for (s, &p) in scores.iter().enumerate() {
            for (o, &v) in orow.iter_mut().zip(values.row(s)) {
                *o += p * v;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let mut v = vec![0.5, -1.0, 3.0, 2.0];
        softmax_inplace(&mut v);
        assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(v.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn softmax_handles_large_logits() {
        let mut v = vec![1000.0, 1001.0];
        softmax_inplace(&mut v);
        assert!(v.iter().all(|p| p.is_finite()));
        assert!(v[1] > v[0]);
    }

    #[test]
    fn softmax_empty_is_noop() {
        let mut v: Vec<f32> = vec![];
        softmax_inplace(&mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn rmsnorm_unit_gain_normalizes() {
        let x = Matrix::from_rows(&[vec![3.0, 4.0]]);
        let y = rmsnorm(&x, &[1.0, 1.0], 0.0);
        // RMS of [3,4] is sqrt(12.5); normalized RMS should be 1.
        let ms: f32 = y.row(0).iter().map(|v| v * v).sum::<f32>() / 2.0;
        assert!((ms - 1.0).abs() < 1e-5);
    }

    #[test]
    fn silu_known_values() {
        assert_eq!(silu(0.0), 0.0);
        assert!((silu(1.0) - 0.731_058_6).abs() < 1e-5);
        assert!(silu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn swiglu_matches_elementwise() {
        let g = Matrix::from_rows(&[vec![1.0, -1.0]]);
        let u = Matrix::from_rows(&[vec![2.0, 2.0]]);
        let y = swiglu(&g, &u);
        assert!((y[(0, 0)] - 2.0 * silu(1.0)).abs() < 1e-6);
        assert!((y[(0, 1)] - 2.0 * silu(-1.0)).abs() < 1e-6);
    }

    #[test]
    fn rope_preserves_norm() {
        let mut h = vec![1.0, 2.0, 3.0, 4.0];
        let norm0: f32 = h.iter().map(|v| v * v).sum();
        rope_inplace(&mut h, 7, 10000.0);
        let norm1: f32 = h.iter().map(|v| v * v).sum();
        assert!((norm0 - norm1).abs() < 1e-4);
    }

    #[test]
    fn rope_position_zero_is_identity() {
        let mut h = vec![1.0, 2.0, 3.0, 4.0];
        let orig = h.clone();
        rope_inplace(&mut h, 0, 10000.0);
        assert_eq!(h, orig);
    }

    #[test]
    fn rope_is_rotation_per_pair() {
        // For d=2 RoPE is a plain 2D rotation by `pos` radians (θ₀=1).
        let mut h = vec![1.0, 0.0];
        rope_inplace(&mut h, 1, 10000.0);
        assert!((h[0] - 1f32.cos()).abs() < 1e-6);
        assert!((h[1] - 1f32.sin()).abs() < 1e-6);
    }

    #[test]
    fn attention_single_uniform_scores() {
        // Identical keys → uniform attention → output = mean of values.
        let keys = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 0.0]]);
        let values = Matrix::from_rows(&[vec![0.0, 2.0], vec![4.0, 0.0]]);
        let out = attention_single(&[1.0, 0.0], &keys, &values);
        assert!((out[0] - 2.0).abs() < 1e-6);
        assert!((out[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn attention_causal_first_row_sees_only_first_kv() {
        let q = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let k = q.clone();
        let v = Matrix::from_rows(&[vec![5.0, 0.0], vec![0.0, 7.0]]);
        let out = attention_causal(&q, &k, &v);
        // Row 0 can only attend to kv 0.
        assert!((out[(0, 0)] - 5.0).abs() < 1e-6);
        assert!((out[(0, 1)] - 0.0).abs() < 1e-6);
    }

    #[test]
    fn attention_causal_last_row_matches_single() {
        let q = Matrix::from_fn(3, 4, |i, j| ((i + j) as f32 * 0.3).sin());
        let k = Matrix::from_fn(3, 4, |i, j| ((i * j) as f32 * 0.2).cos());
        let v = Matrix::from_fn(3, 4, |i, j| (i as f32 - j as f32) * 0.1);
        let full = attention_causal(&q, &k, &v);
        let single = attention_single(q.row(2), &k, &v);
        for (a, b) in full.row(2).iter().zip(single.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
