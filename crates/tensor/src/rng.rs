//! Synthetic weight and activation generators.
//!
//! The accuracy techniques in QoQ each target a specific distributional
//! pathology observed in real LLMs:
//!
//! * **Fixed per-channel outliers in Keys** — "Key matrices tend to have fixed
//!   outlier channels in each head … ∼10× larger than most activation values"
//!   (§4.2, Figure 7). SmoothAttention exists to flatten these.
//! * **Activation outlier channels at block inputs** — motivates block input
//!   rotation (§4.3.1) and activation-aware channel reordering (§4.3.3).
//! * **Heavy-tailed weights** — motivates weight clipping (§4.3.4).
//!
//! Since the real checkpoints are unavailable in this environment, these
//! generators synthesize tensors exhibiting exactly those pathologies so each
//! QoQ technique is exercised against the phenomenon it was designed for
//! (see DESIGN.md §1 for the substitution rationale).

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic generator for synthetic model tensors.
///
/// # Example
/// ```
/// use qserve_tensor::rng::TensorRng;
/// let mut rng = TensorRng::seed(42);
/// let w = rng.gaussian(8, 16, 0.02);
/// assert_eq!(w.shape(), (8, 16));
/// ```
#[derive(Debug)]
pub struct TensorRng {
    rng: StdRng,
}

impl TensorRng {
    /// Creates a generator from a fixed seed (reproducible).
    pub fn seed(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Standard normal sample scaled by `std`.
    pub fn normal(&mut self, std: f32) -> f32 {
        // Box-Muller transform; rejects zero to avoid ln(0).
        let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos() * std
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.rng.gen_range(lo..hi)
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Gaussian matrix with standard deviation `std`.
    pub fn gaussian(&mut self, rows: usize, cols: usize, std: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.normal(std))
    }

    /// Heavy-tailed weight matrix: Gaussian body with a fraction of entries
    /// drawn from a wider Gaussian, mimicking LLM weight kurtosis.
    ///
    /// `tail_fraction` of the entries get `tail_mult ×` the base std.
    pub fn heavy_tailed(
        &mut self,
        rows: usize,
        cols: usize,
        std: f32,
        tail_fraction: f32,
        tail_mult: f32,
    ) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| {
            if self.rng.gen::<f32>() < tail_fraction {
                self.normal(std * tail_mult)
            } else {
                self.normal(std)
            }
        })
    }

    /// Activation-like matrix with *fixed* outlier channels: all entries are
    /// Gaussian, but the columns listed in `outlier_channels` are scaled by
    /// `outlier_mult` for every row (token). This is the Key-cache pathology
    /// of Figure 7.
    pub fn with_outlier_channels(
        &mut self,
        rows: usize,
        cols: usize,
        std: f32,
        outlier_channels: &[usize],
        outlier_mult: f32,
    ) -> Matrix {
        let mut is_outlier = vec![false; cols];
        for &c in outlier_channels {
            assert!(c < cols, "outlier channel {} out of range {}", c, cols);
            is_outlier[c] = true;
        }
        Matrix::from_fn(rows, cols, |_, j| {
            let base = self.normal(std);
            if is_outlier[j] {
                base * outlier_mult
            } else {
                base
            }
        })
    }

    /// Picks `count` distinct channel indices in `[0, cols)`, deterministic
    /// given the RNG state — used to fix the outlier channels of a synthetic
    /// layer once at generation time.
    pub fn pick_outlier_channels(&mut self, cols: usize, count: usize) -> Vec<usize> {
        assert!(count <= cols, "cannot pick {} of {} channels", count, cols);
        let mut chosen = Vec::with_capacity(count);
        while chosen.len() < count {
            let c = self.index(cols);
            if !chosen.contains(&c) {
                chosen.push(c);
            }
        }
        chosen.sort_unstable();
        chosen
    }

    /// Synthetic token-id sequence for pseudo-perplexity evaluation.
    pub fn token_sequence(&mut self, len: usize, vocab: usize) -> Vec<u32> {
        (0..len).map(|_| self.rng.gen_range(0..vocab as u32)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_with_same_seed() {
        let a = TensorRng::seed(7).gaussian(4, 4, 1.0);
        let b = TensorRng::seed(7).gaussian(4, 4, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TensorRng::seed(1).gaussian(4, 4, 1.0);
        let b = TensorRng::seed(2).gaussian(4, 4, 1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn gaussian_statistics_roughly_correct() {
        let mut rng = TensorRng::seed(3);
        let m = rng.gaussian(100, 100, 2.0);
        let mean: f32 = m.as_slice().iter().sum::<f32>() / m.len() as f32;
        let var: f32 =
            m.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / m.len() as f32;
        assert!(mean.abs() < 0.1, "mean {} too far from 0", mean);
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {} too far from 2", var.sqrt());
    }

    #[test]
    fn outlier_channels_are_larger() {
        let mut rng = TensorRng::seed(11);
        let outliers = vec![3, 17];
        let m = rng.with_outlier_channels(256, 32, 1.0, &outliers, 10.0);
        let col_absmax: Vec<f32> = (0..32)
            .map(|j| m.col(j).iter().fold(0.0f32, |a, v| a.max(v.abs())))
            .collect();
        let outlier_min = outliers.iter().map(|&c| col_absmax[c]).fold(f32::MAX, f32::min);
        let normal_max = (0..32)
            .filter(|j| !outliers.contains(j))
            .map(|j| col_absmax[j])
            .fold(0.0f32, f32::max);
        assert!(
            outlier_min > normal_max * 1.5,
            "outlier channels should dominate: {} vs {}",
            outlier_min,
            normal_max
        );
    }

    #[test]
    fn pick_outlier_channels_distinct_and_sorted() {
        let mut rng = TensorRng::seed(5);
        let picks = rng.pick_outlier_channels(64, 8);
        assert_eq!(picks.len(), 8);
        for w in picks.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn heavy_tailed_has_higher_kurtosis() {
        let mut rng = TensorRng::seed(9);
        let normal = rng.gaussian(64, 64, 1.0);
        let heavy = rng.heavy_tailed(64, 64, 1.0, 0.01, 10.0);
        assert!(heavy.abs_max() > normal.abs_max());
    }

    #[test]
    fn token_sequence_in_range() {
        let mut rng = TensorRng::seed(13);
        let seq = rng.token_sequence(100, 1000);
        assert_eq!(seq.len(), 100);
        assert!(seq.iter().all(|&t| t < 1000));
    }
}
