//! Synthetic weight and activation generators.
//!
//! The accuracy techniques in QoQ each target a specific distributional
//! pathology observed in real LLMs:
//!
//! * **Fixed per-channel outliers in Keys** — "Key matrices tend to have fixed
//!   outlier channels in each head … ∼10× larger than most activation values"
//!   (§4.2, Figure 7). SmoothAttention exists to flatten these.
//! * **Activation outlier channels at block inputs** — motivates block input
//!   rotation (§4.3.1) and activation-aware channel reordering (§4.3.3).
//! * **Heavy-tailed weights** — motivates weight clipping (§4.3.4).
//!
//! Since the real checkpoints are unavailable in this environment, these
//! generators synthesize tensors exhibiting exactly those pathologies so each
//! QoQ technique is exercised against the phenomenon it was designed for
//! (see DESIGN.md §1 for the substitution rationale).
//!
//! The generator is built on an in-repo xoshiro256++ PRNG (seeded via
//! SplitMix64) so the workspace needs no external crates: same-seed streams
//! are bit-identical across platforms and releases.

use crate::matrix::Matrix;

/// Deterministic generator for synthetic model tensors.
///
/// # Example
/// ```
/// use qserve_tensor::rng::TensorRng;
/// let mut rng = TensorRng::seed(42);
/// let w = rng.gaussian(8, 16, 0.02);
/// assert_eq!(w.shape(), (8, 16));
/// ```
#[derive(Debug, Clone)]
pub struct TensorRng {
    state: [u64; 4],
}

/// One step of SplitMix64 — used to expand a 64-bit seed into the
/// xoshiro256++ state so that nearby seeds yield uncorrelated streams.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TensorRng {
    /// Creates a generator from a fixed seed (reproducible).
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { state }
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of mantissa entropy.
    pub fn next_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }

    /// Standard normal sample scaled by `std`.
    pub fn normal(&mut self, std: f32) -> f32 {
        // Box-Muller transform; rejects zero to avoid ln(0).
        let u1: f32 = self.next_f32().max(f32::EPSILON);
        let u2: f32 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos() * std
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.next_f32() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() needs a non-empty range");
        // Multiply-shift bounded sampling (Lemire): no modulo bias worth
        // caring about at test-suite sample counts, no division.
        (((self.next_u64() >> 32) * n as u64) >> 32) as usize
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "int_in range {}..={} is empty", lo, hi);
        // Span arithmetic in u64 so extreme ranges (e.g. i64::MIN..=i64::MAX)
        // cannot overflow; a wrapped span of 0 means the full 2^64 range.
        let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
        let offset = if span == 0 { self.next_u64() } else { self.next_u64() % span };
        lo.wrapping_add(offset as i64)
    }

    /// Uniformly picks one element of a non-empty slice.
    pub fn choose<T: Copy>(&mut self, options: &[T]) -> T {
        options[self.index(options.len())]
    }

    /// Fisher–Yates shuffle of a slice in place (the `SliceRandom::shuffle`
    /// replacement).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Gaussian matrix with standard deviation `std`.
    pub fn gaussian(&mut self, rows: usize, cols: usize, std: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.normal(std))
    }

    /// Heavy-tailed weight matrix: Gaussian body with a fraction of entries
    /// drawn from a wider Gaussian, mimicking LLM weight kurtosis.
    ///
    /// `tail_fraction` of the entries get `tail_mult ×` the base std.
    pub fn heavy_tailed(
        &mut self,
        rows: usize,
        cols: usize,
        std: f32,
        tail_fraction: f32,
        tail_mult: f32,
    ) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| {
            if self.next_f32() < tail_fraction {
                self.normal(std * tail_mult)
            } else {
                self.normal(std)
            }
        })
    }

    /// Activation-like matrix with *fixed* outlier channels: all entries are
    /// Gaussian, but the columns listed in `outlier_channels` are scaled by
    /// `outlier_mult` for every row (token). This is the Key-cache pathology
    /// of Figure 7.
    pub fn with_outlier_channels(
        &mut self,
        rows: usize,
        cols: usize,
        std: f32,
        outlier_channels: &[usize],
        outlier_mult: f32,
    ) -> Matrix {
        let mut is_outlier = vec![false; cols];
        for &c in outlier_channels {
            assert!(c < cols, "outlier channel {} out of range {}", c, cols);
            is_outlier[c] = true;
        }
        Matrix::from_fn(rows, cols, |_, j| {
            let base = self.normal(std);
            if is_outlier[j] {
                base * outlier_mult
            } else {
                base
            }
        })
    }

    /// Picks `count` distinct channel indices in `[0, cols)`, deterministic
    /// given the RNG state — used to fix the outlier channels of a synthetic
    /// layer once at generation time.
    pub fn pick_outlier_channels(&mut self, cols: usize, count: usize) -> Vec<usize> {
        assert!(count <= cols, "cannot pick {} of {} channels", count, cols);
        let mut chosen = Vec::with_capacity(count);
        while chosen.len() < count {
            let c = self.index(cols);
            if !chosen.contains(&c) {
                chosen.push(c);
            }
        }
        chosen.sort_unstable();
        chosen
    }

    /// Synthetic token-id sequence for pseudo-perplexity evaluation.
    pub fn token_sequence(&mut self, len: usize, vocab: usize) -> Vec<u32> {
        (0..len).map(|_| self.index(vocab) as u32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_with_same_seed() {
        let a = TensorRng::seed(7).gaussian(4, 4, 1.0);
        let b = TensorRng::seed(7).gaussian(4, 4, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TensorRng::seed(1).gaussian(4, 4, 1.0);
        let b = TensorRng::seed(2).gaussian(4, 4, 1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn gaussian_statistics_roughly_correct() {
        let mut rng = TensorRng::seed(3);
        let m = rng.gaussian(100, 100, 2.0);
        let mean: f32 = m.as_slice().iter().sum::<f32>() / m.len() as f32;
        let var: f32 =
            m.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / m.len() as f32;
        assert!(mean.abs() < 0.1, "mean {} too far from 0", mean);
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {} too far from 2", var.sqrt());
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = TensorRng::seed(21);
        for _ in 0..10_000 {
            let v = rng.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&v), "{} out of range", v);
        }
    }

    #[test]
    fn index_covers_all_buckets() {
        let mut rng = TensorRng::seed(22);
        let mut hits = [0usize; 7];
        for _ in 0..7_000 {
            hits[rng.index(7)] += 1;
        }
        assert!(hits.iter().all(|&h| h > 500), "skewed buckets: {:?}", hits);
    }

    #[test]
    fn int_in_inclusive_endpoints_reachable() {
        let mut rng = TensorRng::seed(23);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1_000 {
            let v = rng.int_in(-2, 2);
            assert!((-2..=2).contains(&v));
            saw_lo |= v == -2;
            saw_hi |= v == 2;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn int_in_extreme_ranges_do_not_overflow() {
        let mut rng = TensorRng::seed(25);
        for _ in 0..1_000 {
            // Any i64 is valid output; this must simply not panic or wrap
            // outside the requested bounds.
            let _ = rng.int_in(i64::MIN, i64::MAX);
            assert!(rng.int_in(i64::MIN, 0) <= 0);
            assert!(rng.int_in(0, i64::MAX) >= 0);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = TensorRng::seed(24);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "50 elements should not shuffle to identity");
    }

    #[test]
    fn outlier_channels_are_larger() {
        let mut rng = TensorRng::seed(11);
        let outliers = vec![3, 17];
        let m = rng.with_outlier_channels(256, 32, 1.0, &outliers, 10.0);
        let col_absmax: Vec<f32> = (0..32)
            .map(|j| m.col(j).iter().fold(0.0f32, |a, v| a.max(v.abs())))
            .collect();
        let outlier_min = outliers.iter().map(|&c| col_absmax[c]).fold(f32::MAX, f32::min);
        let normal_max = (0..32)
            .filter(|j| !outliers.contains(j))
            .map(|j| col_absmax[j])
            .fold(0.0f32, f32::max);
        assert!(
            outlier_min > normal_max * 1.5,
            "outlier channels should dominate: {} vs {}",
            outlier_min,
            normal_max
        );
    }

    #[test]
    fn pick_outlier_channels_distinct_and_sorted() {
        let mut rng = TensorRng::seed(5);
        let picks = rng.pick_outlier_channels(64, 8);
        assert_eq!(picks.len(), 8);
        for w in picks.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn heavy_tailed_has_higher_kurtosis() {
        let mut rng = TensorRng::seed(9);
        let normal = rng.gaussian(64, 64, 1.0);
        let heavy = rng.heavy_tailed(64, 64, 1.0, 0.01, 10.0);
        assert!(heavy.abs_max() > normal.abs_max());
    }

    #[test]
    fn token_sequence_in_range() {
        let mut rng = TensorRng::seed(13);
        let seq = rng.token_sequence(100, 1000);
        assert_eq!(seq.len(), 100);
        assert!(seq.iter().all(|&t| t < 1000));
    }
}
