//! A dependency-free, fixed-size thread pool with a **deterministic
//! fork-join** contract — the parallel substrate behind sweep-grid
//! dispatch, intra-run replica ticking and the quantized-kernel row blocks.
//!
//! The determinism rule is structural, not statistical: [`Pool::par_map`]
//! returns results **in submission order** regardless of which worker ran
//! which item or in what order items finished, and no API on this type ever
//! exposes completion order. A caller that partitions work into
//! independently-computed items and combines them by index therefore gets
//! bit-identical output at every thread count — the contract the golden
//! CSVs and the `serve_paged` equivalence tests lean on.
//!
//! Scheduling is work-stealing over a shared claim counter: each fork
//! publishes one task closure plus an atomic next-index, and every
//! participating worker steals the next unclaimed item when it finishes its
//! current one — so a worker stuck on a slow item never idles the rest of
//! the pool, and item→worker assignment is free to vary run to run without
//! observable effect.
//!
//! Sizing: [`Pool::new`] takes an explicit thread count (`0` means the
//! machine's available parallelism); the process-wide [`global`] pool reads
//! `QSERVE_THREADS` once (this module and `qserve_bench::timing` are the
//! only code allowed to touch the environment — enforced by
//! `qserve-lint`'s `wall-clock` rule). A 1-thread pool runs every fork
//! inline on the caller with no worker threads at all, which is what the
//! golden suite pins (`QSERVE_THREADS=1` in `ci.sh`).
//!
//! Nesting: a fork issued *from inside* a pool task runs inline on that
//! worker instead of re-entering the queue. This keeps one blocked-waiter
//! level from ever deadlocking the fixed-size pool (a sweep cell that
//! parallelizes its replicas which parallelize their kernels would
//! otherwise have every worker waiting on a queue only they can drain),
//! and it changes nothing observable: inline execution is the same
//! index-ordered combine.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// One queued unit: run task indices until the claim counter drains.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its workers.
struct Shared {
    queue: Mutex<QueueState>,
    /// Signals workers that a job (or shutdown) is available.
    available: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

thread_local! {
    /// True while the current thread is executing a pool task — the nesting
    /// guard that turns inner forks into inline execution.
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
}

/// A fixed-size fork-join thread pool. See the module docs for the
/// determinism contract. Dropping the pool joins every worker.
pub struct Pool {
    /// Empty for a 1-thread pool: everything runs inline on the caller.
    shared: Option<Arc<Shared>>,
    workers: Vec<thread::JoinHandle<()>>,
    threads: usize,
}

/// Collects the results of one fork: a panic payload from any task (the
/// first one wins; the fork re-raises it on the forking thread) and the
/// count of finished workers the forking thread blocks on.
struct ForkState {
    finished: Mutex<ForkProgress>,
    done: Condvar,
}

struct ForkProgress {
    workers_done: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Pool {
    /// A pool with `threads` workers; `0` asks for the machine's available
    /// parallelism. `threads == 1` spawns no OS threads — every fork runs
    /// inline on the caller, the mode the golden suite pins.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 { default_parallelism() } else { threads };
        if threads == 1 {
            return Self { shared: None, workers: Vec::new(), threads: 1 };
        }
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
            available: Condvar::new(),
        });
        let workers = (0..threads - 1)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("qserve-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared: Some(shared), workers, threads }
    }

    /// The configured thread count (callers + workers).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, returning results **in submission order** —
    /// `out[i] == f(i, &items[i])` exactly as the sequential loop would
    /// produce, whatever the execution interleaving was.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
        out.resize_with(items.len(), || None);
        {
            let slots = SyncSlice::new(&mut out);
            self.par_run(items.len(), &|i| {
                let r = f(i, &items[i]);
                // Safety: par_run hands each index to exactly one task
                // invocation, so this is the only writer of slot `i`.
                unsafe { *slots.get_mut(i) = Some(r) };
            });
        }
        out.into_iter()
            .map(|r| r.expect("par_map task completed without a result"))
            .collect()
    }

    /// [`Pool::par_map`] over mutable items: each task gets exclusive
    /// access to its own element. Results still come back in submission
    /// order.
    pub fn par_map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
        out.resize_with(items.len(), || None);
        {
            let slots = SyncSlice::new(&mut out);
            let cells = SyncSlice::new(items);
            self.par_run(items.len(), &|i| {
                // Safety: index exclusivity (par_run) makes this the only
                // live reference to `items[i]` and the only writer of slot
                // `i`.
                let item = unsafe { cells.get_mut(i) };
                let r = f(i, item);
                unsafe { *slots.get_mut(i) = Some(r) };
            });
        }
        out.into_iter()
            .map(|r| r.expect("par_map_mut task completed without a result"))
            .collect()
    }

    /// Runs `task(0..n)` across the pool, returning when every index has
    /// completed. Each index is claimed by exactly one worker. Panics from
    /// any task are re-raised here after the fork drains.
    fn par_run(&self, n: usize, task: &(dyn Fn(usize) + Sync)) {
        let inline = n <= 1
            || self.shared.is_none()
            || IN_POOL_TASK.with(|t| t.get());
        if inline {
            for i in 0..n {
                task(i);
            }
            return;
        }
        let shared = self.shared.as_ref().expect("checked above");
        // Workers to enlist: no point waking more than there are items.
        // The caller itself is one of them, so only `helpers` jobs queue.
        let participants = self.threads.min(n);
        let helpers = participants - 1;
        let next = AtomicUsize::new(0);
        let fork = ForkState {
            finished: Mutex::new(ForkProgress { workers_done: 0, panic: None }),
            done: Condvar::new(),
        };
        {
            // Safety: the fork does not return until every participant has
            // reported done (see the wait loop below), so the borrows of
            // `task`, `next` and `fork` outlive every queued job even
            // though the queue's type says 'static.
            let job_data: (&(dyn Fn(usize) + Sync), &AtomicUsize, &ForkState) =
                (task, &next, &fork);
            let job_data: (
                &'static (dyn Fn(usize) + Sync),
                &'static AtomicUsize,
                &'static ForkState,
            ) = unsafe { std::mem::transmute(job_data) };
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            for _ in 0..helpers {
                let (task, next, fork) = job_data;
                q.jobs.push_back(Box::new(move || run_claims(n, task, next, fork)));
            }
            drop(q);
            shared.available.notify_all();
        }
        // The forking thread participates too — inline, claiming from the
        // same counter (nested forks from these claims run inline via the
        // worker guard set here).
        IN_POOL_TASK.with(|t| t.set(true));
        let caller = catch_unwind(AssertUnwindSafe(|| claim_loop(n, task, &next)));
        IN_POOL_TASK.with(|t| t.set(false));
        // Wait for every helper to finish before looking at panics or
        // letting the borrows expire.
        let mut progress = fork.finished.lock().expect("fork state poisoned");
        while progress.workers_done < helpers {
            progress = fork.done.wait(progress).expect("fork state poisoned");
        }
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        if let Some(payload) = progress.panic.take() {
            drop(progress);
            resume_unwind(payload);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            shared.queue.lock().expect("pool queue poisoned").shutdown = true;
            shared.available.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Claims and runs task indices until the counter drains.
fn claim_loop(n: usize, task: &(dyn Fn(usize) + Sync), next: &AtomicUsize) {
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            return;
        }
        task(i);
    }
}

/// One helper's share of a fork: claim indices, record completion (and the
/// first panic) in the fork state.
fn run_claims(n: usize, task: &(dyn Fn(usize) + Sync), next: &AtomicUsize, fork: &ForkState) {
    IN_POOL_TASK.with(|t| t.set(true));
    let result = catch_unwind(AssertUnwindSafe(|| claim_loop(n, task, next)));
    IN_POOL_TASK.with(|t| t.set(false));
    let mut progress = fork.finished.lock().expect("fork state poisoned");
    if let Err(payload) = result {
        progress.panic.get_or_insert(payload);
    }
    progress.workers_done += 1;
    fork.done.notify_all();
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.available.wait(q).expect("pool queue poisoned");
            }
        };
        job();
    }
}

/// `&mut [T]` sharable across tasks under the per-index exclusivity
/// guarantee of [`Pool::par_run`].
struct SyncSlice<T> {
    ptr: *mut T,
}

// Safety: every access goes through `get_mut(i)` with a distinct `i` per
// task (the claim counter hands out each index once), so no two threads
// ever touch the same element.
unsafe impl<T: Send> Sync for SyncSlice<T> {}

impl<T> SyncSlice<T> {
    fn new(slice: &mut [T]) -> Self {
        Self { ptr: slice.as_mut_ptr() }
    }

    /// # Safety
    /// The caller must guarantee `i` is in bounds and accessed by at most
    /// one thread at a time.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get_mut(&self, i: usize) -> &mut T {
        &mut *self.ptr.add(i)
    }
}

/// The machine's available parallelism (1 if the query fails).
pub fn default_parallelism() -> usize {
    thread::available_parallelism().map_or(1, usize::from)
}

/// The thread count the process-wide pool was (or will be) built with:
/// `QSERVE_THREADS` when set to a positive integer, otherwise the machine's
/// available parallelism.
pub fn configured_threads() -> usize {
    match std::env::var("QSERVE_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_parallelism(),
        },
        Err(_) => default_parallelism(),
    }
}

/// The process-wide pool, built on first use from [`configured_threads`].
/// All production call sites (sweep grids, replica ticking, kernel row
/// blocks) share this pool; tests that need a specific width build their
/// own [`Pool`].
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| Pool::new(configured_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props;

    #[test]
    fn par_map_matches_sequential_map() {
        let pool = Pool::new(4);
        let items: Vec<u64> = (0..257).collect();
        let got = pool.par_map(&items, |i, &x| x * x + i as u64);
        let want: Vec<u64> =
            items.iter().enumerate().map(|(i, &x)| x * x + i as u64).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn one_thread_pool_runs_inline_without_workers() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        assert!(pool.workers.is_empty());
        let got = pool.par_map(&[1u32, 2, 3], |_, &x| x + 1);
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn zero_asks_for_available_parallelism() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), default_parallelism());
    }

    #[test]
    fn par_map_mut_gives_exclusive_element_access() {
        let pool = Pool::new(3);
        let mut items: Vec<Vec<u32>> = (0..64).map(|i| vec![i]).collect();
        let lens = pool.par_map_mut(&mut items, |i, v| {
            v.push(i as u32 * 2);
            v.len()
        });
        assert!(lens.iter().all(|&l| l == 2));
        for (i, v) in items.iter().enumerate() {
            assert_eq!(v, &[i as u32, i as u32 * 2]);
        }
    }

    #[test]
    fn nested_forks_run_inline_and_stay_ordered() {
        let pool = Pool::new(4);
        let outer: Vec<usize> = (0..16).collect();
        let got = pool.par_map(&outer, |_, &row| {
            let inner: Vec<usize> = (0..8).map(|c| row * 8 + c).collect();
            // This inner fork lands on a worker thread and must run inline
            // (same pool, no fresh queue capacity) yet keep its order.
            pool.par_map(&inner, |_, &x| x * 3)
        });
        for (row, inner) in got.iter().enumerate() {
            let want: Vec<usize> = (0..8).map(|c| (row * 8 + c) * 3).collect();
            assert_eq!(inner, &want);
        }
    }

    #[test]
    fn panics_propagate_to_the_forking_thread() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(&items, |_, &x| {
                assert!(x != 40, "task 40 exploded");
                x
            })
        }));
        assert!(result.is_err(), "the fork must re-raise the task panic");
        // The pool survives a panicked fork and serves the next one.
        let got = pool.par_map(&[5u32, 6], |_, &x| x);
        assert_eq!(got, vec![5, 6]);
    }

    props! {
        /// The headline determinism property: at any thread count, over
        /// random item counts and workloads, par_map preserves submission
        /// order exactly — `out[i]` is `f(i, items[i])`, bit for bit.
        fn par_map_preserves_submission_order(rng, cases = 24) {
            let threads = rng.int_in(1, 8) as usize;
            let n = rng.int_in(0, 200) as usize;
            let items: Vec<f64> = (0..n).map(|_| rng.normal(1.0) as f64).collect();
            let pool = Pool::new(threads);
            let got = pool.par_map(&items, |i, &x| (x * i as f64).to_bits());
            let want: Vec<u64> =
                items.iter().enumerate().map(|(i, &x)| (x * i as f64).to_bits()).collect();
            assert_eq!(got, want, "threads={threads} n={n}");
        }
    }
}
