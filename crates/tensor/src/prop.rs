//! Minimal in-repo property-testing harness.
//!
//! The workspace builds with no external crates, so this module replaces the
//! `proptest` dependency with the small subset the test suites actually use:
//! deterministic seeded case generation (via [`TensorRng`]) plus an
//! assertion loop. There is no shrinking — a failing case reports its case
//! number and seed so it can be replayed exactly.
//!
//! # Example
//!
//! ```
//! use qserve_tensor::{prop, props};
//!
//! fn double(x: i64) -> i64 { x * 2 }
//!
//! props! {
//!     fn doubling_is_even(rng) {
//!         let x = rng.int_in(-1000, 1000);
//!         assert_eq!(double(x) % 2, 0);
//!     }
//! }
//! ```

use crate::rng::TensorRng;

/// Cases per property when the test does not override the count.
pub const DEFAULT_CASES: u64 = 64;

/// Deterministic per-case seed: mixes the property name (FNV-1a) with the
/// case index so every property walks an independent stream and every case
/// is replayable from the failure message.
pub fn case_seed(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

std::thread_local! {
    static CASE_SKIPPED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Marks the current case as skipped by a failed assumption — called by
/// [`props_assume!`], not directly.
pub fn mark_skipped() {
    CASE_SKIPPED.with(|s| s.set(true));
}

/// Runs one case body, annotating any panic with the case number and seed.
/// Returns `false` when the body bailed out via [`props_assume!`].
pub fn run_case(name: &str, case: u64, seed: u64, body: impl FnOnce(&mut TensorRng)) -> bool {
    CASE_SKIPPED.with(|s| s.set(false));
    let mut rng = TensorRng::seed(seed);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
    if let Err(payload) = result {
        eprintln!(
            "property '{}' failed on case {} (replay with TensorRng::seed({}))",
            name, case, seed
        );
        std::panic::resume_unwind(payload);
    }
    !CASE_SKIPPED.with(|s| s.get())
}

/// Panics when assumptions rejected so many cases the property is vacuous
/// (the stand-in for proptest's global-reject limit): at least one case in
/// eight must actually execute.
pub fn check_coverage(name: &str, executed: u64, cases: u64) {
    assert!(
        executed * 8 >= cases,
        "property '{}' is nearly vacuous: only {}/{} cases passed their \
         assumptions — loosen the generator or the props_assume! condition",
        name,
        executed,
        cases
    );
}

/// `Vec<f32>` with entries uniform in `[lo, hi)`.
pub fn vec_f32(rng: &mut TensorRng, lo: f32, hi: f32, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.uniform(lo, hi)).collect()
}

/// `Vec<u8>` with entries uniform in the inclusive range `[lo, hi]`.
pub fn vec_u8(rng: &mut TensorRng, lo: u8, hi: u8, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.int_in(i64::from(lo), i64::from(hi)) as u8).collect()
}

/// `Vec<i8>` with entries uniform in the inclusive range `[lo, hi]`.
pub fn vec_i8(rng: &mut TensorRng, lo: i8, hi: i8, len: usize) -> Vec<i8> {
    (0..len).map(|_| rng.int_in(i64::from(lo), i64::from(hi)) as i8).collect()
}

/// `Vec<i32>` with entries uniform in the inclusive range `[lo, hi]`.
pub fn vec_i32(rng: &mut TensorRng, lo: i32, hi: i32, len: usize) -> Vec<i32> {
    (0..len).map(|_| rng.int_in(i64::from(lo), i64::from(hi)) as i32).collect()
}

/// Declares `#[test]` functions that each run a property over many
/// deterministically seeded cases.
///
/// Each property receives a fresh [`TensorRng`] per case and draws its own
/// inputs from it. An optional `cases = N` overrides
/// [`DEFAULT_CASES`]:
///
/// ```ignore
/// props! {
///     fn round_trips(rng) { /* 64 cases */ }
///     fn expensive_property(rng, cases = 16) { /* 16 cases */ }
/// }
/// ```
#[macro_export]
macro_rules! props {
    ($( $(#[$attr:meta])* fn $name:ident($rng:ident $(, cases = $cases:expr)?) $body:block )*) => {
        $(
            $(#[$attr])*
            #[test]
            fn $name() {
                #[allow(unused_mut, unused_assignments)]
                let mut cases: u64 = $crate::prop::DEFAULT_CASES;
                $(cases = $cases;)?
                let mut executed: u64 = 0;
                for case in 0..cases {
                    let seed = $crate::prop::case_seed(stringify!($name), case);
                    if $crate::prop::run_case(stringify!($name), case, seed, |$rng| $body) {
                        executed += 1;
                    }
                }
                $crate::prop::check_coverage(stringify!($name), executed, cases);
            }
        )*
    };
}

/// Skips the current case when a precondition does not hold (the
/// `prop_assume!` replacement). Must be used directly inside a [`props!`]
/// body, where the case runs in its own closure. If assumptions reject more
/// than 7 in 8 cases the test fails as vacuous instead of silently passing.
#[macro_export]
macro_rules! props_assume {
    ($cond:expr) => {
        if !$cond {
            $crate::prop::mark_skipped();
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    props! {
        fn generated_vectors_respect_ranges(rng) {
            let f = vec_f32(rng, -2.0, 3.0, 17);
            assert_eq!(f.len(), 17);
            assert!(f.iter().all(|v| (-2.0..3.0).contains(v)));
            let u = vec_u8(rng, 0, 15, 32);
            assert!(u.iter().all(|&v| v <= 15));
            let i = vec_i8(rng, -128, 127, 8);
            assert_eq!(i.len(), 8);
            let w = vec_i32(rng, -119, 119, 5);
            assert!(w.iter().all(|&v| (-119..=119).contains(&v)));
        }

        fn case_count_override_respected(rng, cases = 3) {
            let _ = rng.next_u64();
        }

        fn assume_skips_without_failing(rng) {
            let x = rng.int_in(0, 9);
            props_assume!(x % 2 == 0);
            assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn coverage_floor_accepts_one_in_eight() {
        check_coverage("p", 8, 64);
        check_coverage("p", 1, 1);
    }

    #[test]
    #[should_panic(expected = "nearly vacuous")]
    fn coverage_floor_rejects_vacuous_property() {
        check_coverage("p", 7, 64);
    }

    #[test]
    fn run_case_reports_skips() {
        assert!(run_case("r", 0, 1, |_| {}));
        assert!(!run_case("r", 0, 1, |_| mark_skipped()));
    }

    #[test]
    fn case_seeds_differ_across_names_and_cases() {
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
        assert_eq!(case_seed("a", 5), case_seed("a", 5));
    }
}
