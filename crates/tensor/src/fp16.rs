//! IEEE-754 binary16 ("half") emulation.
//!
//! QServe's KV4 attention kernel replaces all FP32 CUDA-core arithmetic with
//! FP16 to double the compute roof (§5.3). To emulate that kernel faithfully
//! we need arithmetic that *rounds like FP16*: every intermediate is squeezed
//! through a binary16 round-trip. [`F16`] stores the raw 16 bits and performs
//! each operation in `f32` followed by a correctly-rounded conversion back to
//! binary16 (round-to-nearest-even), which matches how half-precision FMA-free
//! arithmetic behaves on NVIDIA hardware for individual `+`/`*` ops.

use std::fmt;

/// A 16-bit IEEE-754 binary16 float stored as raw bits.
///
/// # Example
///
/// ```
/// use qserve_tensor::F16;
/// let a = F16::from_f32(1.0009765625); // representable exactly: 1 + 2^-10
/// assert_eq!(a.to_f32(), 1.0009765625);
/// let b = F16::from_f32(1.00048828125); // 1 + 2^-11 rounds to even → 1.0
/// assert_eq!(b.to_f32(), 1.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Largest finite binary16 value (65504).
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest positive normal value (2⁻¹⁴).
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);

    /// Constructs from raw binary16 bits.
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw binary16 bits.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even semantics.
    pub fn from_f32(value: f32) -> Self {
        F16(f32_to_f16_bits(value))
    }

    /// Converts to `f32` (exact — every binary16 value is representable).
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// FP16 addition: `round16(a + b)`.
    pub fn add(self, other: F16) -> F16 {
        F16::from_f32(self.to_f32() + other.to_f32())
    }

    /// FP16 subtraction: `round16(a - b)`.
    pub fn sub(self, other: F16) -> F16 {
        F16::from_f32(self.to_f32() - other.to_f32())
    }

    /// FP16 multiplication: `round16(a * b)`.
    pub fn mul(self, other: F16) -> F16 {
        F16::from_f32(self.to_f32() * other.to_f32())
    }

    /// Fused multiply-add rounding once, like the HFMA2 instruction family:
    /// `round16(a * b + c)`.
    pub fn mul_add(self, b: F16, c: F16) -> F16 {
        F16::from_f32(f32::mul_add(self.to_f32(), b.to_f32(), c.to_f32()))
    }

    /// Whether the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// Whether the value is ±∞.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<F16> for f32 {
    fn from(h: F16) -> f32 {
        h.to_f32()
    }
}

/// Rounds an `f32` to the nearest representable binary16 value
/// (round-to-nearest, ties-to-even), returning an `f32`.
///
/// This is the workhorse for "FP16 math" in kernel emulation:
/// `round_f16(a * b)` behaves like a half-precision multiply.
pub fn round_f16(value: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(value))
}

/// Converts `f32` bits to binary16 bits with round-to-nearest-even,
/// handling subnormals, overflow to ±∞, and NaN payload preservation (quieted).
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf or NaN.
        return if mant == 0 {
            sign | 0x7C00
        } else {
            sign | 0x7E00 // quiet NaN
        };
    }

    // Unbiased exponent in binary16 terms.
    let unbiased = exp - 127;
    let half_exp = unbiased + 15;

    if half_exp >= 0x1F {
        // Overflow → infinity.
        return sign | 0x7C00;
    }

    if half_exp <= 0 {
        // Subnormal or zero in binary16.
        if half_exp < -10 {
            return sign; // underflows to zero
        }
        // Add the implicit leading 1 and shift right; round to nearest even.
        let m = mant | 0x0080_0000;
        let shift = (14 - half_exp) as u32; // 14..24
        let half_mant = m >> shift;
        let rem = m & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let rounded = match rem.cmp(&halfway) {
            std::cmp::Ordering::Greater => half_mant + 1,
            std::cmp::Ordering::Equal => half_mant + (half_mant & 1),
            std::cmp::Ordering::Less => half_mant,
        };
        return sign | rounded as u16;
    }

    // Normal number: keep 10 mantissa bits, round-to-nearest-even on bit 12.
    let half_mant = mant >> 13;
    let rem = mant & 0x1FFF;
    let mut out = sign | ((half_exp as u16) << 10) | (half_mant as u16);
    match rem.cmp(&0x1000) {
        std::cmp::Ordering::Greater => out = out.wrapping_add(1),
        std::cmp::Ordering::Equal => out = out.wrapping_add(out & 1),
        std::cmp::Ordering::Less => {}
    }
    // Mantissa carry may roll into the exponent; that is the correct
    // behaviour (e.g. 2047.5 → 2048). Overflow into infinity is also correct.
    out
}

/// Converts binary16 bits to an exactly-equal `f32`.
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = u32::from(bits & 0x8000) << 16;
    let exp = (bits >> 10) & 0x1F;
    let mant = u32::from(bits & 0x03FF);

    if exp == 0 {
        if mant == 0 {
            return f32::from_bits(sign);
        }
        // Subnormal: value = mant * 2^-24.
        let v = (mant as f32) * (-24f32).exp2();
        return if sign != 0 { -v } else { v };
    }
    if exp == 0x1F {
        return if mant == 0 {
            f32::from_bits(sign | 0x7F80_0000)
        } else {
            f32::from_bits(sign | 0x7FC0_0000 | (mant << 13))
        };
    }
    let f32_exp = (u32::from(exp) + 112) << 23;
    f32::from_bits(sign | f32_exp | (mant << 13))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_round_trip() {
        for i in -2048i32..=2048 {
            let v = i as f32;
            assert_eq!(round_f16(v), v, "integer {} should be exact in fp16", i);
        }
    }

    #[test]
    fn large_integers_round() {
        // 2049 is not representable: mantissa has 11 bits of precision at
        // this scale. Ties-to-even sends it to 2048.
        assert_eq!(round_f16(2049.0), 2048.0);
        assert_eq!(round_f16(2051.0), 2052.0);
    }

    #[test]
    fn overflow_to_infinity() {
        assert!(F16::from_f32(70000.0).is_infinite());
        assert_eq!(round_f16(65504.0), 65504.0);
        // 65520 is exactly halfway between 65504 and "65536" (infinity):
        // rounds to infinity per IEEE.
        assert!(F16::from_f32(65520.0).is_infinite());
        assert_eq!(round_f16(65519.0), 65504.0);
    }

    #[test]
    fn subnormals() {
        let tiny = (-24f32).exp2(); // smallest positive subnormal
        assert_eq!(round_f16(tiny), tiny);
        assert_eq!(round_f16(tiny * 0.49), 0.0);
        let below_normal = (-15f32).exp2();
        assert_eq!(round_f16(below_normal), below_normal);
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn negative_values() {
        assert_eq!(round_f16(-1.5), -1.5);
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
    }

    #[test]
    fn ties_to_even() {
        // 1 + 2^-11 is exactly between 1.0 and 1+2^-10 → rounds to 1.0 (even)
        assert_eq!(round_f16(1.0 + (-11f32).exp2()), 1.0);
        // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9 → rounds to 1+2^-9? No:
        // it is exactly halfway between 1+2^-10 (odd mantissa) and 1+2^-9
        // (even mantissa) → ties to even → 1+2^-9.
        let v = 1.0 + 3.0 * (-11f32).exp2();
        assert_eq!(round_f16(v), 1.0 + (-9f32).exp2());
    }

    #[test]
    fn arithmetic_rounds() {
        let a = F16::from_f32(0.1); // ≈0.0999756
        let b = F16::from_f32(0.2); // ≈0.199951
        let c = a.add(b);
        // Result must itself be a binary16 value.
        assert_eq!(round_f16(c.to_f32()), c.to_f32());
    }

    #[test]
    fn all_f16_bit_patterns_round_trip() {
        // Every finite binary16 is exactly representable in f32, so
        // f32→f16 of the f16→f32 conversion must be the identity.
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            let back = F16::from_f32(h.to_f32());
            assert_eq!(back.to_bits(), bits, "bits {:#06x} failed round trip", bits);
        }
    }

    #[test]
    fn mul_add_rounds_once() {
        // Pick values where (a*b) rounding differs from fused rounding.
        let a = F16::from_f32(3.0 + (-10f32).exp2() * 3.0);
        let b = F16::from_f32(3.0);
        let c = F16::from_f32(-9.0);
        let fused = a.mul_add(b, c);
        let split = a.mul(b).add(c);
        // They may differ by at most one ULP; both must be valid f16.
        assert_eq!(round_f16(fused.to_f32()), fused.to_f32());
        assert_eq!(round_f16(split.to_f32()), split.to_f32());
    }
}
