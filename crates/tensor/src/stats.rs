//! Error metrics and per-axis statistics shared by the quantization crates.

use crate::matrix::Matrix;

/// Per-column absolute maximum (channel salience, §4.3.3: "We use max(|X|) to
/// determine the channel salience").
pub fn col_abs_max(m: &Matrix) -> Vec<f32> {
    let mut out = vec![0.0f32; m.cols()];
    for i in 0..m.rows() {
        for (o, &v) in out.iter_mut().zip(m.row(i)) {
            *o = o.max(v.abs());
        }
    }
    out
}

/// Per-row absolute maximum (per-channel weight scale, per-token activation
/// scale).
pub fn row_abs_max(m: &Matrix) -> Vec<f32> {
    (0..m.rows())
        .map(|i| m.row(i).iter().fold(0.0f32, |a, v| a.max(v.abs())))
        .collect()
}

/// Per-row minimum and maximum (asymmetric quantization range).
pub fn row_min_max(m: &Matrix) -> Vec<(f32, f32)> {
    (0..m.rows())
        .map(|i| {
            m.row(i).iter().fold((f32::MAX, f32::MIN), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            })
        })
        .collect()
}

/// Mean squared error between two equal-shaped matrices.
///
/// # Panics
/// Panics on shape mismatch.
pub fn mse(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.shape(), b.shape(), "mse shape mismatch");
    if a.is_empty() {
        return 0.0;
    }
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        / a.len() as f64
}

/// Signal-to-quantization-noise ratio in dB: `10·log₁₀(‖a‖² / ‖a−b‖²)`.
///
/// Higher is better; returns `f64::INFINITY` for an exact match.
///
/// # Panics
/// Panics on shape mismatch.
pub fn sqnr_db(reference: &Matrix, quantized: &Matrix) -> f64 {
    assert_eq!(reference.shape(), quantized.shape(), "sqnr shape mismatch");
    let signal: f64 = reference
        .as_slice()
        .iter()
        .map(|&v| f64::from(v) * f64::from(v))
        .sum();
    let noise: f64 = reference
        .as_slice()
        .iter()
        .zip(quantized.as_slice())
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum();
    if noise.abs().to_bits() == 0 {
        f64::INFINITY
    } else {
        10.0 * (signal / noise).log10()
    }
}

/// Relative Frobenius error `‖a − b‖_F / ‖a‖_F` (0 when `a` is all-zero and
/// `b == a`).
///
/// # Panics
/// Panics on shape mismatch.
pub fn relative_error(reference: &Matrix, approx: &Matrix) -> f64 {
    assert_eq!(reference.shape(), approx.shape(), "relative_error shape mismatch");
    let num = f64::from(reference.sub(approx).frobenius_norm());
    let den = f64::from(reference.frobenius_norm());
    if den.abs().to_bits() == 0 {
        if num.abs().to_bits() == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / den
    }
}

/// Argsort of `values` in descending order — used by activation-aware channel
/// reordering (§4.3.3: "AbsMax → ArgSort → Reorder").
pub fn argsort_desc(values: &[f32]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn col_abs_max_basic() {
        let m = Matrix::from_rows(&[vec![1.0, -5.0], vec![-2.0, 3.0]]);
        assert_eq!(col_abs_max(&m), vec![2.0, 5.0]);
    }

    #[test]
    fn row_abs_max_basic() {
        let m = Matrix::from_rows(&[vec![1.0, -5.0], vec![-2.0, 3.0]]);
        assert_eq!(row_abs_max(&m), vec![5.0, 3.0]);
    }

    #[test]
    fn row_min_max_basic() {
        let m = Matrix::from_rows(&[vec![1.0, -5.0, 2.0]]);
        assert_eq!(row_min_max(&m), vec![(-5.0, 2.0)]);
    }

    #[test]
    fn mse_zero_for_identical() {
        let m = Matrix::from_fn(3, 3, |i, j| (i + j) as f32);
        assert_eq!(mse(&m, &m), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let a = Matrix::from_rows(&[vec![0.0, 0.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert!((mse(&a, &b) - 12.5).abs() < 1e-9);
    }

    #[test]
    fn sqnr_infinite_for_exact() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as f32);
        assert!(sqnr_db(&m, &m).is_infinite());
    }

    #[test]
    fn sqnr_decreases_with_noise() {
        let m = Matrix::full(4, 4, 1.0);
        let small = Matrix::full(4, 4, 1.01);
        let big = Matrix::full(4, 4, 1.5);
        assert!(sqnr_db(&m, &small) > sqnr_db(&m, &big));
    }

    #[test]
    fn relative_error_scale_free() {
        let a = Matrix::full(2, 2, 10.0);
        let b = Matrix::full(2, 2, 11.0);
        assert!((relative_error(&a, &b) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn argsort_desc_orders() {
        assert_eq!(argsort_desc(&[1.0, 3.0, 2.0]), vec![1, 2, 0]);
    }

    #[test]
    fn argsort_handles_ties() {
        let idx = argsort_desc(&[2.0, 2.0, 1.0]);
        assert_eq!(idx[2], 2);
    }
}
