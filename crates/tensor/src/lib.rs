//! Dense tensor substrate for the QServe reproduction.
//!
//! This crate provides the numeric foundation that every other crate in the
//! workspace builds on:
//!
//! * [`Matrix`] — a row-major dense `f32` matrix with the transformer-shaped
//!   matmul variants the paper's GEMM discussion needs (`Y = X Wᵀ`, §2.1).
//! * [`fp16`] — IEEE-754 binary16 emulation so that "FP16 math" in kernel
//!   emulation actually rounds like FP16 tensor-core / CUDA-core math.
//! * [`ops`] — transformer primitives: softmax, RMSNorm, RoPE, SiLU/SwiGLU.
//! * [`rng`] — synthetic weight/activation generators, including the fixed
//!   per-channel outlier injection that SmoothAttention (§4.2) and block
//!   rotation (§4.3.1) are designed to counteract.
//! * [`stats`] — absmax/MSE/SQNR helpers shared by the quantization crates.
//! * [`prop`] — the in-repo property-testing harness ([`props!`] /
//!   [`props_assume!`]) that replaces the `proptest` dependency.
//! * [`pool`] — a dependency-free fork-join thread pool with submission-
//!   order results (the deterministic parallel substrate for sweeps,
//!   replica ticking and kernel row blocks).
//!
//! # Example
//!
//! ```
//! use qserve_tensor::Matrix;
//!
//! let x = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
//! let w = Matrix::eye(3);
//! let y = x.matmul_nt(&w); // Y = X Wᵀ, W is identity
//! assert_eq!(y.as_slice(), x.as_slice());
//! ```

pub mod fp16;
pub mod matrix;
pub mod ops;
pub mod pool;
pub mod prop;
pub mod rng;
pub mod stats;

pub use fp16::F16;
pub use matrix::Matrix;
