//! Property tests of the tensor substrate's algebraic invariants.

use proptest::prelude::*;
use qserve_tensor::fp16::{f16_bits_to_f32, f32_to_f16_bits, round_f16};
use qserve_tensor::ops::{rope_inplace, softmax_inplace};
use qserve_tensor::Matrix;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-100.0f32..100.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    /// (A + B) + C == A + (B + C) exactly is false in floats, but the
    /// element-wise ops must commute: A + B == B + A bitwise.
    #[test]
    fn add_commutes(a in small_matrix(3, 4), b in small_matrix(3, 4)) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    /// Transpose is an involution.
    #[test]
    fn transpose_involution(a in small_matrix(4, 6)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    /// matmul distributes over the identity: (X·I) == X bitwise.
    #[test]
    fn identity_neutral(a in small_matrix(3, 5)) {
        prop_assert_eq!(a.matmul_nn(&Matrix::eye(5)), a);
    }

    /// Y = X·Wᵀ must equal X·(Wᵀ) computed via explicit transpose, closely.
    #[test]
    fn matmul_nt_consistent(x in small_matrix(3, 4), w in small_matrix(2, 4)) {
        let a = x.matmul_nt(&w);
        let b = x.matmul_nn(&w.transpose());
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((u - v).abs() <= 1e-3 * u.abs().max(1.0));
        }
    }

    /// Scaling rows by f then 1/f round-trips within an ulp or two.
    #[test]
    fn row_scaling_inverts(a in small_matrix(3, 4), f in 0.25f32..4.0) {
        let back = a.scale_rows(&[f; 3]).scale_rows(&[1.0 / f; 3]);
        for (u, v) in a.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((u - v).abs() <= 1e-4 * u.abs().max(1e-3));
        }
    }

    /// fp16 round-trip is idempotent: round(round(x)) == round(x).
    #[test]
    fn fp16_idempotent(x in -70000.0f32..70000.0) {
        let once = round_f16(x);
        prop_assert_eq!(round_f16(once).to_bits(), once.to_bits());
    }

    /// fp16 rounding is monotone: x ≤ y ⇒ round(x) ≤ round(y).
    #[test]
    fn fp16_monotone(x in -60000.0f32..60000.0, y in -60000.0f32..60000.0) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(round_f16(lo) <= round_f16(hi));
    }

    /// fp16 conversion round-trips bits for every representable value.
    #[test]
    fn fp16_bits_round_trip(bits in 0u16..0x7C00) {
        // All positive finite halves.
        prop_assert_eq!(f32_to_f16_bits(f16_bits_to_f32(bits)), bits);
    }

    /// Softmax output is a probability simplex for any finite input.
    #[test]
    fn softmax_simplex(v in proptest::collection::vec(-50.0f32..50.0, 1..20)) {
        let mut s = v.clone();
        softmax_inplace(&mut s);
        let sum: f32 = s.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// RoPE preserves the norm of every pair (it is a rotation).
    #[test]
    fn rope_isometry(
        v in proptest::collection::vec(-10.0f32..10.0, 8),
        pos in 0usize..4096,
    ) {
        let mut h = v.clone();
        rope_inplace(&mut h, pos, 10000.0);
        let n0: f32 = v.iter().map(|x| x * x).sum();
        let n1: f32 = h.iter().map(|x| x * x).sum();
        prop_assert!((n0 - n1).abs() <= 1e-3 * n0.max(1.0));
    }

    /// Column permutation preserves multiset of entries per row.
    #[test]
    fn permute_preserves_rows(a in small_matrix(2, 6), seed in 0u64..100) {
        use rand::{seq::SliceRandom, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut perm: Vec<usize> = (0..6).collect();
        perm.shuffle(&mut rng);
        let p = a.permute_cols(&perm);
        for i in 0..2 {
            let mut orig: Vec<_> = a.row(i).iter().map(|v| v.to_bits()).collect();
            let mut permuted: Vec<_> = p.row(i).iter().map(|v| v.to_bits()).collect();
            orig.sort_unstable();
            permuted.sort_unstable();
            prop_assert_eq!(orig, permuted);
        }
    }
}
