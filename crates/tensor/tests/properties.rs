//! Property tests of the tensor substrate's algebraic invariants.

use qserve_tensor::fp16::{f16_bits_to_f32, f32_to_f16_bits, round_f16};
use qserve_tensor::ops::{rope_inplace, softmax_inplace};
use qserve_tensor::rng::TensorRng;
use qserve_tensor::{prop, props, Matrix};

fn small_matrix(rng: &mut TensorRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(rows, cols, prop::vec_f32(rng, -100.0, 100.0, rows * cols))
}

props! {
    /// (A + B) + C == A + (B + C) exactly is false in floats, but the
    /// element-wise ops must commute: A + B == B + A bitwise.
    fn add_commutes(rng) {
        let a = small_matrix(rng, 3, 4);
        let b = small_matrix(rng, 3, 4);
        assert_eq!(a.add(&b), b.add(&a));
    }

    /// Transpose is an involution.
    fn transpose_involution(rng) {
        let a = small_matrix(rng, 4, 6);
        assert_eq!(a.transpose().transpose(), a);
    }

    /// matmul distributes over the identity: (X·I) == X bitwise.
    fn identity_neutral(rng) {
        let a = small_matrix(rng, 3, 5);
        assert_eq!(a.matmul_nn(&Matrix::eye(5)), a);
    }

    /// Y = X·Wᵀ must equal X·(Wᵀ) computed via explicit transpose, closely.
    fn matmul_nt_consistent(rng) {
        let x = small_matrix(rng, 3, 4);
        let w = small_matrix(rng, 2, 4);
        let a = x.matmul_nt(&w);
        let b = x.matmul_nn(&w.transpose());
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() <= 1e-3 * u.abs().max(1.0));
        }
    }

    /// Scaling rows by f then 1/f round-trips within an ulp or two.
    fn row_scaling_inverts(rng) {
        let a = small_matrix(rng, 3, 4);
        let f = rng.uniform(0.25, 4.0);
        let back = a.scale_rows(&[f; 3]).scale_rows(&[1.0 / f; 3]);
        for (u, v) in a.as_slice().iter().zip(back.as_slice()) {
            assert!((u - v).abs() <= 1e-4 * u.abs().max(1e-3));
        }
    }

    /// fp16 round-trip is idempotent: round(round(x)) == round(x).
    fn fp16_idempotent(rng) {
        let x = rng.uniform(-70000.0, 70000.0);
        let once = round_f16(x);
        assert_eq!(round_f16(once).to_bits(), once.to_bits());
    }

    /// fp16 rounding is monotone: x ≤ y ⇒ round(x) ≤ round(y).
    fn fp16_monotone(rng) {
        let x = rng.uniform(-60000.0, 60000.0);
        let y = rng.uniform(-60000.0, 60000.0);
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        assert!(round_f16(lo) <= round_f16(hi));
    }

    /// fp16 conversion round-trips bits for every representable value.
    fn fp16_bits_round_trip(rng) {
        // All positive finite halves.
        let bits = rng.int_in(0, 0x7BFF) as u16;
        assert_eq!(f32_to_f16_bits(f16_bits_to_f32(bits)), bits);
    }

    /// Softmax output is a probability simplex for any finite input.
    fn softmax_simplex(rng) {
        let len = rng.int_in(1, 19) as usize;
        let mut s = prop::vec_f32(rng, -50.0, 50.0, len);
        softmax_inplace(&mut s);
        let sum: f32 = s.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// RoPE preserves the norm of every pair (it is a rotation).
    fn rope_isometry(rng) {
        let v = prop::vec_f32(rng, -10.0, 10.0, 8);
        let pos = rng.index(4096);
        let mut h = v.clone();
        rope_inplace(&mut h, pos, 10000.0);
        let n0: f32 = v.iter().map(|x| x * x).sum();
        let n1: f32 = h.iter().map(|x| x * x).sum();
        assert!((n0 - n1).abs() <= 1e-3 * n0.max(1.0));
    }

    /// Column permutation preserves multiset of entries per row.
    fn permute_preserves_rows(rng) {
        let a = small_matrix(rng, 2, 6);
        let mut perm: Vec<usize> = (0..6).collect();
        rng.shuffle(&mut perm);
        let p = a.permute_cols(&perm);
        for i in 0..2 {
            let mut orig: Vec<_> = a.row(i).iter().map(|v| v.to_bits()).collect();
            let mut permuted: Vec<_> = p.row(i).iter().map(|v| v.to_bits()).collect();
            orig.sort_unstable();
            permuted.sort_unstable();
            assert_eq!(orig, permuted);
        }
    }
}
