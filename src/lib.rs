//! # QServe (Rust reproduction)
//!
//! A from-scratch Rust reproduction of *QServe: W4A8KV4 Quantization and
//! System Co-design for Efficient LLM Serving* (MLSys 2025): the QoQ
//! quantization algorithm, bit-exact emulations of the QServe GPU kernels,
//! an analytical A100/L40S cost model, a transformer substrate, and a
//! continuous-batching serving engine.
//!
//! This facade re-exports every workspace crate:
//!
//! * [`tensor`] — dense matrices, binary16 emulation, transformer ops.
//! * [`quant`] — single-level integer quantization primitives.
//! * [`core`] — the QoQ algorithm (progressive group quantization,
//!   SmoothAttention, rotation, smoothing, reordering, clipping).
//! * [`kernels`] — register-level kernel emulation (packing, RLP, W4A8
//!   GEMM, KV4 attention).
//! * [`gpusim`] — roofline and main-loop latency models for A100/L40S.
//! * [`model`] — model configs, synthetic checkpoints, forward pass, eval.
//! * [`serve`] — paged KV4 cache, memory budgeting, serving engine.
//!
//! # Quickstart
//!
//! ```
//! use qserve::core::{pipeline::quantize_block, QoqConfig};
//! use qserve::model::synth::SyntheticModel;
//! use qserve::model::forward::collect_calibration;
//!
//! let model = SyntheticModel::small(2);
//! let calib = collect_calibration(&model, &[1, 2, 3, 4, 5, 6, 7, 8]);
//! let qb = quantize_block(&model.blocks[0], &calib[0], &QoqConfig::default());
//! assert_eq!(qb.reports.len(), 7); // seven linear layers quantized
//! ```

pub use qserve_core as core;
pub use qserve_gpusim as gpusim;
pub use qserve_kernels as kernels;
pub use qserve_model as model;
pub use qserve_quant as quant;
pub use qserve_serve as serve;
pub use qserve_tensor as tensor;
