#!/usr/bin/env sh
# Tier-1 verification, fully offline. Any attempt to pull a crates.io
# dependency fails the build immediately — the workspace must stay
# dependency-free (internal path dependencies only). Warnings are
# promoted to errors so zero-warning status is enforced, not incidental.
set -eu

cd "$(dirname "$0")"

export RUSTFLAGS="-D warnings"

cargo build --release --offline --locked --workspace --all-targets

# Contract gate: qserve-lint must find zero unsuppressed violations of the
# determinism/accounting contract before any test runs. Its summary line
# prints the suppression count, so every `lint: allow` stays visible here.
cargo run --release --offline --locked -p qserve-lint

# Tier-1 shape (root package, debug), then the whole workspace in release —
# release reuses the artifacts built above and keeps the heavy bench/model
# suites fast. QSERVE_THREADS=1 pins the golden suite to the sequential
# driver: the reference arm of the determinism contract.
QSERVE_THREADS=1 cargo test -q --offline --locked
QSERVE_THREADS=1 cargo test -q --offline --locked --workspace --release

# The parallel arm of the contract: regenerate and byte-diff every golden
# CSV again with a 4-thread pool (sweep grids fan out cell-per-task and
# the cluster driver ticks replicas in barrier windows — same bytes or
# this fails naming the experiment that drifted).
QSERVE_THREADS=4 cargo test -q --offline --locked --release -p qserve-bench --test golden_snapshots

# Thread-scaling smoke: runs the same trace at 1/2/4 pool threads,
# asserts the reports are identical, and writes the machine-readable
# baseline to results/BENCH_par_scaling.json.
QSERVE_BENCH_FAST=1 cargo bench --offline --locked -p qserve-bench --bench par_scaling >/dev/null
test -s results/BENCH_par_scaling.json

# The reproduce binary is the user-facing entry point; prove it writes CSV.
# Clear the artifact first so a stale file cannot mask a broken write path.
rm -f results/table1.csv
cargo run --release --offline --locked -p qserve-bench --bin reproduce -- table1 >/dev/null
test -s results/table1.csv

# Smoke the prefix-sharing/chunked-prefill grid the same way.
rm -f results/prefix_sweep.csv
cargo run --release --offline --locked -p qserve-bench --bin reproduce -- prefix_sweep >/dev/null
test -s results/prefix_sweep.csv

# And the multi-replica cluster grid.
rm -f results/cluster_sweep.csv
cargo run --release --offline --locked -p qserve-bench --bin reproduce -- cluster_sweep >/dev/null
test -s results/cluster_sweep.csv

# And the heterogeneous-fleet × admission grid (the full grid is small).
rm -f results/hetero_sweep.csv
cargo run --release --offline --locked -p qserve-bench --bin reproduce -- hetero_sweep >/dev/null
test -s results/hetero_sweep.csv

# And the CI-sized mega_sweep (10k requests through the event-driven core;
# the full million-request id is `mega_sweep`, minutes of runtime).
rm -f results/mega_sweep_smoke.csv
cargo run --release --offline --locked -p qserve-bench --bin reproduce -- mega_sweep_smoke >/dev/null
test -s results/mega_sweep_smoke.csv

# And the CI-sized failure sweep (crash/drain/upgrade × recompute/swap on
# the 4-replica fleet; the full-pressure id is `failure_sweep`).
rm -f results/failure_sweep_smoke.csv
cargo run --release --offline --locked -p qserve-bench --bin reproduce -- failure_sweep_smoke >/dev/null
test -s results/failure_sweep_smoke.csv

# And the CI-sized control-plane sweep (deadline routing, prefix
# migration, elastic autoscaling; the full id is `elastic_sweep`).
rm -f results/elastic_sweep_smoke.csv
cargo run --release --offline --locked -p qserve-bench --bin reproduce -- elastic_sweep_smoke >/dev/null
test -s results/elastic_sweep_smoke.csv

# Every example must run end to end, offline (smoke: exit status only).
for ex in quickstart generate kv4_attention paged_serving prefix_caching \
          cluster_serving heterogeneous_fleet roofline serving_throughput \
          ablation replica_failover elastic_fleet; do
    cargo run --release --offline --locked --example "$ex" >/dev/null
done

echo "ci.sh: all green"
