//! Quickstart: quantize a synthetic transformer block with QoQ, inspect the
//! reports, and run the emulated W4A8 GEMM against its FP32 reference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qserve::core::pipeline::{quantize_block, DeployedWeight, QoqConfig, WeightGranularity};
use qserve::kernels::{gemm_w4a8_per_group, quantize_activations_int8};
use qserve::model::forward::collect_calibration;
use qserve::model::synth::SyntheticModel;
use qserve::tensor::rng::TensorRng;
use qserve::tensor::stats::relative_error;

fn main() {
    // 1. A reduced-scale synthetic Llama-2-7B twin (2 layers) with the
    //    outlier pathologies real checkpoints show.
    let model = SyntheticModel::small(2);
    println!(
        "model: {} — hidden {}, {} heads ({} kv), {} layers",
        model.config.name,
        model.config.hidden,
        model.config.heads,
        model.config.kv_heads,
        model.config.layers
    );

    // 2. Calibrate on a short token stream and quantize block 0 with the
    //    full QoQ recipe (rotation + SmoothAttention + smoothing + reorder +
    //    clip + progressive group quantization).
    let mut rng = TensorRng::seed(7);
    let calib_tokens = rng.token_sequence(64, model.config.vocab);
    let calib = collect_calibration(&model, &calib_tokens);
    let cfg = QoqConfig {
        weight_granularity: WeightGranularity::PerGroup(32),
        ..QoqConfig::w4a8kv4_g128()
    };
    let qb = quantize_block(&model.blocks[0], &calib[0], &cfg);

    println!("\nper-layer quantization reports:");
    for r in &qb.reports {
        println!(
            "  {:10}  weight SQNR {:6.2} dB   clip α {:.2}",
            r.name, r.weight_sqnr_db, r.clip_alpha
        );
    }

    // 3. Run the deployed form through the emulated GPU kernel: per-group
    //    W4A8 GEMM with register-level-parallel dequantization.
    let x = rng.gaussian(8, model.config.hidden, 1.0);
    let qx = quantize_activations_int8(&x);
    let (name, deployed) = &qb.deployed[0];
    let DeployedWeight::Progressive(pw) = deployed else {
        unreachable!("g128 config produces progressive weights");
    };
    let y_kernel = gemm_w4a8_per_group(&qx, pw);
    // Reference: FP32 GEMM against the *transformed* weight the kernel holds.
    let y_ref = x.matmul_nt(&pw.dequantize());
    println!(
        "\nW4A8 kernel vs FP32 reference on {}: relative error {:.4} \
         (within activation-quantization noise)",
        name,
        relative_error(&y_ref, &y_kernel)
    );
    println!(
        "protective-range invariant: max |intermediate| = {} (must be ≤ 127)",
        pw.max_intermediate_abs()
    );
}
