//! Roofline exploration (Figure 3): why W4A8 dominates W4A16 and W8A8 at
//! every batch size, where W4A16/W8A8 cross, and what KV4 buys attention.
//!
//! ```text
//! cargo run --release --example roofline
//! ```

use qserve::gpusim::roofline::{
    attainable_attention_ops, attainable_gemm_ops, crossover_batch, GemmPrecision,
};
use qserve::gpusim::GpuSpec;

fn bar(tops: f64, scale: f64) -> String {
    "#".repeat((tops / scale).round() as usize)
}

fn main() {
    let gpu = GpuSpec::a100();
    let (n, k) = (4096.0, 4096.0);
    println!(
        "A100 roofline, 4096x4096 weight (CUDA turning point {:.1} op/byte)\n",
        gpu.cuda_turning_point()
    );
    println!("{:>5}  {:>9} {:>9} {:>9}  (TOPS)", "m", "W4A16", "W8A8", "W4A8");
    for m in [1u32, 4, 8, 16, 32, 64, 78, 96, 128, 192, 256, 384, 512] {
        let w4a16 = attainable_gemm_ops(&gpu, GemmPrecision::Int4Fp16, f64::from(m), n, k) / 1e12;
        let w8a8 = attainable_gemm_ops(&gpu, GemmPrecision::Int8Int8, f64::from(m), n, k) / 1e12;
        let w4a8 = attainable_gemm_ops(&gpu, GemmPrecision::Int4Int8, f64::from(m), n, k) / 1e12;
        println!(
            "{:>5}  {:>9.0} {:>9.0} {:>9.0}  {}",
            m,
            w4a16,
            w8a8,
            w4a8,
            bar(w4a8, 12.0)
        );
    }

    match crossover_batch(&gpu, GemmPrecision::Int4Fp16, GemmPrecision::Int8Int8, n, k) {
        Some(m) => println!(
            "\nW4A16 and W8A8 cross at m ≈ {} (paper, §3.1: m ≈ 78). \
             W4A8 sits on the upper envelope of both.",
            m
        ),
        None => println!("\nno W4A16/W8A8 crossover found in 1..=512 (unexpected)"),
    }

    println!("\nattention rooflines (1 MAC/element):");
    for bits in [16u32, 8, 4] {
        println!(
            "  KV{:2}: {:>6.0} GOPS attainable",
            bits,
            attainable_attention_ops(&gpu, bits) / 1e9
        );
    }
    println!("KV4 doubles the attention roofline over KV8 — the §3.1 argument.");
}
