//! End-to-end generation through the deployed stack: QoQ-quantize a
//! synthetic model, deploy every block through the emulated W4A8 kernels and
//! paged KV4 cache, and generate tokens greedily — comparing against the
//! FP16 reference model's choices.
//!
//! ```text
//! cargo run --release --example generate
//! ```

use qserve::core::pipeline::{QoqConfig, WeightGranularity};
use qserve::model::forward::forward_logits;
use qserve::model::synth::SyntheticModel;
use qserve::serve::ModelRuntime;
use qserve::tensor::rng::TensorRng;

fn main() {
    let model = SyntheticModel::small(2);
    let calib = TensorRng::seed(1).token_sequence(48, model.config.vocab);
    let cfg = QoqConfig {
        weight_granularity: WeightGranularity::PerGroup(32),
        ..QoqConfig::w4a8kv4_g128()
    };
    println!(
        "deploying {}: {} layers, hidden {}, W4A8KV4 (progressive g{:?})",
        model.config.name, model.config.layers, model.config.hidden, cfg.weight_granularity
    );
    let mut runtime = ModelRuntime::deploy(&model, &cfg, &calib, 4096);

    let prompt: Vec<u32> = vec![17, 201, 5, 88];
    let seq = runtime.start_sequence().expect("fresh sequence");
    let generated = runtime.generate_greedy(seq, &prompt, 12).expect("capacity");
    println!("\nprompt:    {:?}", prompt);
    println!("generated: {:?} (12 tokens, greedy)", generated);
    println!(
        "KV cache after generation: {} tokens across {} pages",
        runtime.cache().seq_len(seq),
        runtime.cache().used_pages()
    );

    // How often does the deployed model agree with the FP16 reference on
    // next-token choices along the same trajectory?
    let mut full: Vec<u32> = prompt.clone();
    full.extend(&generated);
    let ref_logits = forward_logits(&model, &full);
    let mut agree = 0;
    for t in 0..full.len() - 1 {
        let row = ref_logits.row(t);
        let ref_next = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i as u32)
            .unwrap();
        if t + 1 < full.len() && ref_next == full[t + 1] {
            agree += 1;
        }
    }
    println!(
        "\nFP16 reference would have picked the same next token at {}/{} positions",
        agree,
        full.len() - 1
    );
    runtime.finish_sequence(seq).expect("registered");
    println!("sequence retired; all pages returned to the pool.");
}
