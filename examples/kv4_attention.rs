//! Walkthrough of the KV4 path: paged KV cache with inline per-head dynamic
//! scales (§5.1), the fp16 magic-bias dequantization trick, and the fused
//! decode-attention kernel (§5.3) checked against an FP32 reference.
//!
//! ```text
//! cargo run --release --example kv4_attention
//! ```

use qserve::core::kv_quant::KvPrecision;
use qserve::kernels::attention::{decode_attention_fp16, magic_bias_dequant, QuantizedKvHead};
use qserve::serve::kv_cache::{KvCacheConfig, PagedKvCache, SequenceId};
use qserve::tensor::fp16::F16;
use qserve::tensor::ops::attention_single;
use qserve::tensor::rng::TensorRng;
use qserve::tensor::Matrix;

fn main() {
    // --- The two-op dequantization trick (Kim et al. 2022) ---------------
    let scale = F16::from_f32(0.0371);
    println!("fp16 magic-bias dequantization (code, zero=8):");
    for code in [0u8, 7, 8, 15] {
        let v = magic_bias_dequant(code, 8, scale);
        println!("  code {:2} → {:+.4}  (exact: {:+.4})", code, v.to_f32(), (code as f32 - 8.0) * scale.to_f32());
    }

    // --- Fill a paged KV4 cache token by token ---------------------------
    let cfg = KvCacheConfig {
        page_tokens: 32,
        kv_heads: 4,
        head_dim: 32,
        layers: 1,
        precision: KvPrecision::Int4,
    };
    let mut cache = PagedKvCache::new(cfg, 256);
    let seq = SequenceId(0);
    cache.register(seq).expect("fresh id");

    let mut rng = TensorRng::seed(11);
    let width = cfg.kv_heads * cfg.head_dim;
    let tokens = 100;
    let keys = rng.gaussian(tokens, width, 1.0);
    let values = rng.gaussian(tokens, width, 1.0);
    for t in 0..tokens {
        cache.append_token(seq, 0, keys.row(t), values.row(t)).expect("capacity");
    }
    println!(
        "\npaged cache: {} tokens cached in {} pages ({} bytes/page, scales stored inline)",
        cache.seq_len(seq),
        cache.used_pages(),
        cfg.page_bytes()
    );

    // --- Decode attention against the quantized cache --------------------
    let head = 2;
    let q: Vec<f32> = (0..cfg.head_dim).map(|_| rng.normal(1.0)).collect();
    let (k_toks, v_toks) = cache.read_head(seq, 0, head).expect("registered");
    let mut kv_head = QuantizedKvHead::new(KvPrecision::Int4);
    kv_head.keys = k_toks;
    kv_head.values = v_toks;
    let out_kv4 = decode_attention_fp16(&q, &kv_head);

    // FP32 reference over the unquantized K/V slices of that head.
    let lo = head * cfg.head_dim;
    let hi = lo + cfg.head_dim;
    let k_ref = keys.slice_cols(lo, hi);
    let v_ref = values.slice_cols(lo, hi);
    let out_ref = attention_single(&q, &k_ref, &v_ref);

    let err = out_kv4
        .iter()
        .zip(&out_ref)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!(
        "decode attention over {} cached tokens: max |KV4 − FP32| = {:.4}",
        tokens, err
    );
    println!("first 4 outputs  KV4: {:?}", &out_kv4[..4].iter().map(|v| Matrix::from_rows(&[vec![*v]])[(0,0)]).collect::<Vec<_>>());
    println!("first 4 outputs FP32: {:?}", &out_ref[..4]);
}
