//! Shared-prefix serving: multi-tenant traffic through the real quantized
//! stack, with each tenant's system prompt stored once in the paged KV4
//! cache (fork + copy-on-write) and chunked prefill interleaving prompt
//! processing with decode.
//!
//! ```text
//! cargo run --release --example prefix_caching
//! ```

use qserve::core::pipeline::{QoqConfig, WeightGranularity};
use qserve::model::synth::SyntheticModel;
use qserve::serve::request::{ArrivalPattern, LengthDist, PrefixSharing, SloSpec, WorkloadSpec};
use qserve::serve::scheduler::{Fcfs, SchedOptions};
use qserve::serve::ModelRuntime;
use qserve::tensor::rng::TensorRng;

fn deploy() -> ModelRuntime {
    let model = SyntheticModel::small(2);
    let calib = TensorRng::seed(1).token_sequence(32, model.config.vocab);
    let cfg = QoqConfig {
        weight_granularity: WeightGranularity::PerGroup(32),
        ..QoqConfig::w4a8kv4_g128()
    };
    ModelRuntime::deploy(&model, &cfg, &calib, 1024)
}

fn main() {
    // Two tenants, each with a 40-token system prompt (2½ cache pages);
    // every request adds a short private suffix.
    let spec = WorkloadSpec {
        num_requests: 8,
        input: LengthDist::Uniform { lo: 3, hi: 8 },
        output: LengthDist::Uniform { lo: 2, hi: 5 },
        arrival: ArrivalPattern::Batch,
        sharing: PrefixSharing::Groups { groups: 2, prefix_len: 40 },
        slo: SloSpec::None,
        seed: 7,
    };

    println!("workload: 8 requests, 2 tenants × 40-token system prompt + private suffixes\n");

    let mut private_rt = deploy();
    let private = private_rt.serve(&spec, 4, Box::new(Fcfs)).expect("serves");
    let private_peak = private_rt.cache().peak_used_pages();

    let mut shared_rt = deploy();
    let shared = shared_rt
        .serve_with(
            &spec,
            4,
            Box::new(Fcfs),
            SchedOptions { share_prefixes: true, chunk_tokens: Some(16), ..SchedOptions::default() },
        )
        .expect("serves");
    let shared_peak = shared_rt.cache().peak_used_pages();

    for (s, p) in shared.iter().zip(&private) {
        assert_eq!(s.output, p.output, "sharing must never change tokens");
        println!(
            "request {:2}: {:2}-token prompt → {:?} (first token at step {:2} shared vs {:2} private)",
            s.id.0,
            s.prompt.len(),
            &s.output[..s.output.len().min(4)],
            s.first_token_step,
            p.first_token_step,
        );
    }

    println!(
        "\nidentical tokens, one copy of each system prompt: peak unique pages {} → {} \
         ({} saved), prompts forked off resident siblings via copy-on-write pages",
        private_peak,
        shared_peak,
        private_peak - shared_peak
    );
    assert!(shared_peak < private_peak);
    assert_eq!(shared_rt.cache().used_pages(), 0, "every page returned");
}
