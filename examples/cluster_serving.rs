//! Cluster serving: the same multi-tenant workload on N engine replicas
//! behind each routing policy — round-robin, least-outstanding-work, and
//! prefix-affinity (requests of one tenant stick to the replica already
//! holding that tenant's system prompt, so copy-on-write prefix reuse
//! survives sharding).
//!
//! ```text
//! cargo run --release --example cluster_serving
//! ```

use qserve::gpusim::{GpuSpec, TpGroup};
use qserve::model::ModelConfig;
use qserve::serve::cluster::{
    Cluster, LeastOutstanding, PrefixAffinity, RoundRobin, RoutingPolicy,
};
use qserve::serve::request::WorkloadSpec;
use qserve::serve::scheduler::{MemoryAware, Reservation, SchedOptions};
use qserve::serve::{ServingEngine, SystemConfig};

fn main() {
    let engine = ServingEngine::new(
        GpuSpec::a100(),
        ModelConfig::llama2_7b(),
        SystemConfig::QServePerChannel,
    )
    .expect("A100 serves Llama-2-7B");

    // Four tenants, each opening with a 2048-token system prompt; 96
    // requests with chat-sized private suffixes and completions.
    let spec = WorkloadSpec::shared_prefix(4, 2048, 96, 42);
    let opts = SchedOptions { share_prefixes: true, chunk_tokens: None, ..SchedOptions::default() };
    let routings: Vec<(&str, Box<dyn RoutingPolicy>)> = vec![
        ("round-robin", Box::new(RoundRobin::default())),
        ("least-outstanding", Box::new(LeastOutstanding)),
        ("prefix-affinity", Box::new(PrefixAffinity::default())),
    ];

    println!("workload: 96 requests, 4 tenants × 2048-token system prompt; 4 replicas\n");
    println!(
        "{:<18} {:>12} {:>10} {:>8} {:>8} {:>18}",
        "routing", "tok/s", "mean TTFT", "p50", "p99", "peak pages/replica"
    );
    let mut peaks = std::collections::HashMap::new();
    let mut ttfts = std::collections::HashMap::new();
    for (name, policy) in routings {
        let report = Cluster::new(engine.clone(), 4, policy)
            .serve_paged(
                &spec,
                || Box::new(MemoryAware::default()),
                Reservation::OnDemand,
                opts,
            )
            .expect("serves");
        assert_eq!(report.completed, 96, "every request finishes exactly once");
        println!(
            "{:<18} {:>12.0} {:>10.3} {:>8.3} {:>8.3} {:>18}",
            name,
            report.throughput_tps,
            report.mean_ttft_s,
            report.p50_latency_s,
            report.p99_latency_s,
            report.max_replica_peak_pages,
        );
        peaks.insert(name, report.max_replica_peak_pages);
        ttfts.insert(name, report.mean_ttft_s);
    }
    assert!(
        peaks["prefix-affinity"] < peaks["round-robin"],
        "affinity must store each system prompt on one replica"
    );
    assert!(ttfts["prefix-affinity"] < ttfts["round-robin"]);
    println!(
        "\nprefix-affinity keeps each tenant's prompt on one replica: {} → {} peak \
         pages per replica vs round-robin, TTFT {:.3}s → {:.3}s",
        peaks["round-robin"],
        peaks["prefix-affinity"],
        ttfts["round-robin"],
        ttfts["prefix-affinity"],
    );

    // A replica can be a whole tensor-parallel group: same cluster, sharded
    // engines (TP=1 stays bit-identical to the single-GPU cost model).
    let tp4 = ServingEngine::with_tp(
        GpuSpec::a100(),
        ModelConfig::llama2_7b(),
        SystemConfig::QServePerChannel,
        TpGroup::nvlink(4),
    )
    .expect("builds");
    let report = Cluster::new(tp4, 2, Box::new(LeastOutstanding))
        .serve_paged(
            &spec,
            || Box::new(MemoryAware::default()),
            Reservation::OnDemand,
            opts,
        )
        .expect("serves");
    println!(
        "\n2 replicas × TP=4 (8 GPUs): {:.0} tok/s aggregate, p99 {:.3}s",
        report.throughput_tps, report.p99_latency_s
    );
}
