//! The Figure 16 ablation: add QoQ's techniques one at a time and watch the
//! accuracy recover while the serving footprint shrinks.
//!
//! ```text
//! cargo run --release --example ablation
//! ```

use qserve::core::kv_quant::KvPrecision;
use qserve::core::pipeline::{QoqConfig, WeightGranularity};
use qserve::model::eval::{custom_forward_logits, quantize_model};
use qserve::model::forward::forward_logits;
use qserve::model::synth::SyntheticModel;
use qserve::model::ModelConfig;
use qserve::tensor::rng::TensorRng;
use qserve::tensor::stats::mse;

fn main() {
    let full = ModelConfig::llama2_7b();
    let cfg = SyntheticModel::reduced_config(&full, 128, 2);
    let model = SyntheticModel::generate(cfg, Default::default());
    let calib = TensorRng::seed(1).token_sequence(64, model.config.vocab);
    let eval = TensorRng::seed(2).token_sequence(96, model.config.vocab);
    let ref_logits = forward_logits(&model, &eval);

    let g = WeightGranularity::PerGroup(32);
    let rtn = QoqConfig::rtn(g);
    let steps: Vec<(&str, QoqConfig, KvPrecision)> = vec![
        (
            "W4A8KV8 (4-bit weights, RTN)",
            QoqConfig { kv_precision: KvPrecision::Int8, ..rtn.clone() },
            KvPrecision::Int8,
        ),
        (
            "+ block rotation & smoothing",
            QoqConfig {
                kv_precision: KvPrecision::Int8,
                rotation: true,
                output_smoothing: true,
                ..rtn.clone()
            },
            KvPrecision::Int8,
        ),
        (
            "+ weight clipping",
            QoqConfig {
                kv_precision: KvPrecision::Int8,
                rotation: true,
                output_smoothing: true,
                weight_clipping: true,
                ..rtn.clone()
            },
            KvPrecision::Int8,
        ),
        (
            "+ 4-bit KV cache (W4A8KV4)",
            QoqConfig {
                rotation: true,
                output_smoothing: true,
                weight_clipping: true,
                ..rtn.clone()
            },
            KvPrecision::Int4,
        ),
        (
            "+ SmoothAttention",
            QoqConfig {
                rotation: true,
                output_smoothing: true,
                weight_clipping: true,
                smooth_attention: true,
                ..rtn.clone()
            },
            KvPrecision::Int4,
        ),
        (
            "+ channel reorder (full QoQ)",
            QoqConfig { weight_granularity: g, ..QoqConfig::w4a8kv4_g128() },
            KvPrecision::Int4,
        ),
    ];

    println!("{:38} {:>16} {:>14}", "step", "logit distortion", "KV bits");
    println!("{}", "-".repeat(70));
    for (label, cfg, kv) in steps {
        let q = quantize_model(&model, &cfg, &calib);
        let logits = custom_forward_logits(&q.model, &q.rotations, Some(8), kv, &eval);
        println!(
            "{:38} {:>16.6} {:>14}",
            label,
            mse(&ref_logits, &logits),
            kv.bits()
        );
    }
    println!(
        "\nLower distortion = closer to the FP16 model. The staircase mirrors \
         Figure 16: 4-bit KV initially hurts; SmoothAttention and the rest of \
         the recipe claw the accuracy back while keeping the 4-bit footprint."
    );
}
