//! Replica failover: a 4-replica fleet loses one replica mid-run. The
//! crash destroys that replica's KV pages and every request it was
//! holding — but not the requests themselves: the in-flight work is
//! requeued through routing onto the survivors, the prefill already done
//! for it is honestly re-owed, and the replica rejoins after its restart.
//! The report shows the crash as a goodput dip and a recovery time, never
//! as a lost request.
//!
//! ```text
//! cargo run --release --example replica_failover
//! ```

use qserve::gpusim::GpuSpec;
use qserve::model::ModelConfig;
use qserve::serve::cluster::{Cluster, LeastOutstanding};
use qserve::serve::request::{ArrivalPattern, LengthDist, PrefixSharing, SloSpec, WorkloadSpec};
use qserve::serve::scheduler::{MemoryAware, Reservation, SchedOptions};
use qserve::serve::{FaultPlan, ServingEngine, SystemConfig};

fn main() {
    let engine = ServingEngine::new(
        GpuSpec::a100(),
        ModelConfig::llama2_7b(),
        SystemConfig::QServePerChannel,
    )
    .expect("A100 serves Llama-2-7B");

    // 128 long-prompt requests arriving over ~8 s; replica 0 crashes at
    // t = 2 s with work in flight and restarts at t = 5 s, while arrivals
    // are still coming — so the restarted replica rejoins the rotation.
    let spec = WorkloadSpec {
        num_requests: 128,
        input: LengthDist::Uniform { lo: 3000, hi: 4000 },
        output: LengthDist::Uniform { lo: 128, hi: 256 },
        arrival: ArrivalPattern::Poisson { rate_rps: 16.0 },
        sharing: PrefixSharing::None,
        slo: SloSpec::None,
        seed: 7,
    };
    let crash_s = 2.0;
    let plan = FaultPlan::none().crash_at(0, crash_s).restart_at(0, 5.0);

    let mk_cluster = || Cluster::new(engine.clone(), 4, Box::new(LeastOutstanding));
    let serve = |mut cluster: Cluster, plan: &FaultPlan| {
        cluster
            .serve_paged_faulty(
                &spec,
                || Box::new(MemoryAware::default()),
                Reservation::OnDemand,
                SchedOptions::default(),
                plan,
            )
            .expect("serves")
    };
    let healthy = serve(mk_cluster(), &FaultPlan::none());
    let crashed = serve(mk_cluster(), &plan);

    println!("workload: 128 requests; replica 0 crashes at t=2s, restarts at t=5s\n");
    println!(
        "{:<12} {:>10} {:>9} {:>10} {:>10} {:>9}",
        "run", "completed", "requeued", "lost tok", "tok/s", "p99"
    );
    for (name, r) in [("healthy", &healthy), ("crash", &crashed)] {
        println!(
            "{:<12} {:>10} {:>9} {:>10} {:>10.0} {:>9.3}",
            name,
            r.completed,
            r.requeued,
            r.lost_prefill_tokens,
            r.throughput_tps,
            r.p99_latency_s
        );
    }

    // The conservation contract: the crash requeued work, it lost none.
    assert_eq!(crashed.completed + crashed.shed, 128, "no request may be lost");
    assert!(crashed.requeued > 0, "the crash must catch in-flight work");
    assert!(crashed.lost_prefill_tokens > 0, "destroyed KV pages re-owe their prefill");
    let dead = &crashed.per_replica[0];
    assert!(dead.requeued_away > 0, "replica 0's in-flight work moved elsewhere");
    assert_eq!(dead.restarts, 1, "replica 0 came back exactly once");
    assert!(dead.completed > 0, "the restarted replica rejoins the rotation");
    assert_eq!(
        dead.completed + dead.requeued_away,
        dead.routed,
        "the per-replica ledger balances through the crash"
    );

    let recovery = crashed.last_requeued_finish_s - crash_s;
    println!(
        "\ncrash requeued {} in-flight requests (re-owing {} prefill tokens); \
         last of them finished {:.2}s after the crash; replica 0 served {} more \
         after restarting",
        crashed.requeued,
        crashed.lost_prefill_tokens,
        recovery,
        dead.completed,
    );
    println!(
        "goodput dip: {:.0} → {:.0} tok/s; every request still finished exactly once",
        healthy.throughput_tps, crashed.throughput_tps
    );
}
