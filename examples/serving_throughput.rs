//! End-to-end serving benchmark: maximum achievable throughput of QServe vs
//! the TensorRT-LLM configurations on both GPUs — the Figure 15 / Table 4
//! protocol (1024 input tokens, 512 output tokens, memory-limited batch) —
//! followed by a look past the paper's fixed shape: heterogeneous workloads
//! under different scheduling policies, with TTFT and tail latency.
//!
//! ```text
//! cargo run --release --example serving_throughput
//! ```

use qserve::gpusim::GpuSpec;
use qserve::model::ModelConfig;
use qserve::serve::engine::Workload;
use qserve::serve::request::WorkloadSpec;
use qserve::serve::scheduler::{Fcfs, MemoryAware, Reservation, ShortestJobFirst};
use qserve::serve::{ServingEngine, SystemConfig};

fn main() {
    let workload = Workload::paper(64);
    for gpu in [GpuSpec::a100(), GpuSpec::l40s()] {
        println!("=== {} (memory {} GiB) ===", gpu.name, gpu.memory_bytes >> 30);
        for model in [
            ModelConfig::llama3_8b(),
            ModelConfig::llama2_7b(),
            ModelConfig::llama2_13b(),
            ModelConfig::llama2_70b(),
        ] {
            print!("{:12}", model.name);
            let qserve = SystemConfig::qserve_for(gpu.name);
            let mut best_trt = 0.0f64;
            for sys in [
                SystemConfig::TrtFp16,
                SystemConfig::TrtW4A16,
                SystemConfig::TrtW8A8,
                qserve,
            ] {
                match ServingEngine::new(gpu.clone(), model.clone(), sys) {
                    Ok(engine) => match engine.max_throughput(&workload) {
                        Ok(r) => {
                            print!("  {}: {:6.0} tok/s (batch {})", sys.name(), r.throughput_tps, r.max_batch);
                            if !sys.is_qserve() {
                                best_trt = best_trt.max(r.throughput_tps);
                            } else if best_trt > 0.0 {
                                print!("  → {:.2}× best TRT", r.throughput_tps / best_trt);
                            }
                        }
                        Err(e) => print!("  {}: {}", sys.name(), e),
                    },
                    Err(e) => print!("  {}: {}", sys.name(), e),
                }
            }
            println!();
        }
        println!();
    }
    // Beyond the paper's protocol: a bimodal chat/long-doc mix under three
    // scheduling policies, each decode step costed per-sequence at its true
    // KV length.
    println!("=== heterogeneous serving (A100, Llama-2-7B, QServe) ===");
    let engine = ServingEngine::new(
        GpuSpec::a100(),
        ModelConfig::llama2_7b(),
        SystemConfig::QServePerChannel,
    )
    .expect("A100 serves Llama-2-7B");
    let spec = WorkloadSpec::mixed(256, 42);
    println!(
        "workload: {} requests, prompts {:?}..{:?} tokens (bimodal), batch-arrival",
        spec.num_requests,
        spec.input.bounds().0,
        spec.input.bounds().1
    );
    let runs = [
        ("fcfs", engine.run_workload(&spec, Box::new(Fcfs))),
        ("sjf", engine.run_workload(&spec, Box::new(ShortestJobFirst))),
        (
            "memory-aware",
            engine.run_workload_paged(
                &spec,
                Box::new(MemoryAware::default()),
                Reservation::OnDemand,
            ),
        ),
    ];
    println!(
        "{:14} {:>10} {:>6} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "policy", "tok/s", "batch", "ttft(s)", "p50(s)", "p95(s)", "p99(s)", "preempt"
    );
    for (name, run) in runs {
        let r = run.expect("workload must be servable");
        println!(
            "{:14} {:>10.0} {:>6} {:>9.3} {:>8.3} {:>8.3} {:>8.3} {:>8}",
            name,
            r.throughput_tps,
            r.max_batch,
            r.mean_ttft_s,
            r.p50_latency_s,
            r.p95_latency_s,
            r.p99_latency_s,
            r.preemptions
        );
    }
    println!();
    println!(
        "Note: latencies come from the analytical A100/L40S cost model \
         (see DESIGN.md §1); ratios, not absolutes, are the reproduced quantity."
    );
}
