//! End-to-end serving benchmark: maximum achievable throughput of QServe vs
//! the TensorRT-LLM configurations on both GPUs — the Figure 15 / Table 4
//! protocol (1024 input tokens, 512 output tokens, memory-limited batch).
//!
//! ```text
//! cargo run --release --example serving_throughput
//! ```

use qserve::gpusim::GpuSpec;
use qserve::model::ModelConfig;
use qserve::serve::engine::Workload;
use qserve::serve::{ServingEngine, SystemConfig};

fn main() {
    let workload = Workload::paper(64);
    for gpu in [GpuSpec::a100(), GpuSpec::l40s()] {
        println!("=== {} (memory {} GiB) ===", gpu.name, gpu.memory_bytes >> 30);
        for model in [
            ModelConfig::llama3_8b(),
            ModelConfig::llama2_7b(),
            ModelConfig::llama2_13b(),
            ModelConfig::llama2_70b(),
        ] {
            print!("{:12}", model.name);
            let qserve = SystemConfig::qserve_for(gpu.name);
            let mut best_trt = 0.0f64;
            for sys in [
                SystemConfig::TrtFp16,
                SystemConfig::TrtW4A16,
                SystemConfig::TrtW8A8,
                qserve,
            ] {
                match ServingEngine::new(gpu.clone(), model.clone(), sys) {
                    Ok(engine) => match engine.max_throughput(&workload) {
                        Ok(r) => {
                            print!("  {}: {:6.0} tok/s (batch {})", sys.name(), r.throughput_tps, r.max_batch);
                            if !sys.is_qserve() {
                                best_trt = best_trt.max(r.throughput_tps);
                            } else if best_trt > 0.0 {
                                print!("  → {:.2}× best TRT", r.throughput_tps / best_trt);
                            }
                        }
                        Err(e) => print!("  {}: {}", sys.name(), e),
                    },
                    Err(e) => print!("  {}: {}", sys.name(), e),
                }
            }
            println!();
        }
        println!();
    }
    println!(
        "Note: latencies come from the analytical A100/L40S cost model \
         (see DESIGN.md §1); ratios, not absolutes, are the reproduced quantity."
    );
}
