//! Functional serving path: the request-lifecycle scheduler core driving a
//! multi-sequence paged KV4 cache and the fused attention kernel with real
//! admission/retirement — the data-plane counterpart of the
//! latency-simulating engine, now with heterogeneous prompt lengths and
//! page-budget-gated admission.
//!
//! ```text
//! cargo run --release --example paged_serving
//! ```

use qserve::core::kv_quant::KvPrecision;
use qserve::serve::attention_exec::paged_decode_attention;
use qserve::serve::kv_cache::{KvCacheConfig, PagedKvCache, SequenceId};
use qserve::serve::request::{ArrivalPattern, LengthDist, PrefixSharing, SloSpec, WorkloadSpec};
use qserve::serve::scheduler::{Fcfs, PageBudget, Reservation, Scheduler};
use qserve::tensor::rng::TensorRng;

fn main() {
    let cfg = KvCacheConfig {
        page_tokens: 16,
        kv_heads: 4,
        head_dim: 32,
        layers: 2,
        precision: KvPrecision::Int4,
    };
    let total_pages = 64;
    let mut cache = PagedKvCache::new(cfg, total_pages);
    let mut rng = TensorRng::seed(3);
    let width = cfg.kv_heads * cfg.head_dim;
    let query_heads = 8; // GQA: 8 query heads over 4 kv heads

    println!(
        "paged KV4 cache: {} pages × {} tokens × {} B (per-head fp16 scales inline)\n",
        total_pages,
        cfg.page_tokens,
        cfg.page_bytes()
    );

    // A heterogeneous workload: six requests with mixed prompt/output
    // lengths, admitted by the scheduler core against the cache's own page
    // arithmetic (peak-reserving, so appends can never hit OutOfPages).
    let spec = WorkloadSpec {
        num_requests: 6,
        input: LengthDist::Uniform { lo: 12, hi: 56 },
        output: LengthDist::Uniform { lo: 4, hi: 12 },
        arrival: ArrivalPattern::Batch,
        sharing: PrefixSharing::None,
        slo: SloSpec::None,
        seed: 11,
    };
    let mut budget =
        PageBudget::new(cfg.page_tokens, cfg.layers, total_pages, Reservation::Peak);
    let mut sched = Scheduler::new(spec.sample(), 4, Box::new(Fcfs));
    println!(
        "workload: {} requests, prompts 12–56 tokens, outputs 4–12; batch limit 4, \
         page-budget admission",
        spec.num_requests
    );

    let fresh = |rng: &mut TensorRng| -> Vec<f32> {
        (0..width).map(|_| rng.normal(1.0)).collect()
    };
    let mut step = 0usize;
    while !sched.is_done() {
        let wave = sched.admit(&mut budget);
        for (&id, &len) in wave.ids.iter().zip(&wave.prefill_lens) {
            let seq = SequenceId(id.0);
            cache.register(seq).expect("fresh sequence");
            for _ in 0..len {
                let (k, v) = (fresh(&mut rng), fresh(&mut rng));
                for layer in 0..cfg.layers {
                    cache.append_token(seq, layer, &k, &v).expect("peak-reserved");
                }
            }
            println!(
                "step {:2}: admitted seq {} ({} prompt tokens) — cache {}/{} pages",
                step,
                id.0,
                len,
                cache.used_pages(),
                total_pages
            );
        }
        if !wave.ids.is_empty() {
            sched.charge_prefill(wave.prefill_lens.iter().sum::<usize>() as f64);
        }
        sched.make_room(&mut budget); // no-op under peak reservation

        // One decode tick: fused KV4 attention for every running sequence,
        // then append this step's KV (as the engine would after projections).
        for r in sched.running() {
            let seq = SequenceId(r.id.0);
            let q: Vec<f32> = (0..query_heads * cfg.head_dim).map(|_| rng.normal(1.0)).collect();
            let out = paged_decode_attention(&cache, seq, 0, &q).expect("active");
            let (k, v) = (fresh(&mut rng), fresh(&mut rng));
            for layer in 0..cfg.layers {
                cache.append_token(seq, layer, &k, &v).expect("peak-reserved");
            }
            if r.remaining() == 1 {
                let norm: f32 = out.iter().map(|x| x * x).sum::<f32>().sqrt();
                println!(
                    "step {:2}: seq {} finishing — context {:3} tokens, ‖attention out‖ = {:.3}",
                    step,
                    r.id.0,
                    cache.seq_len(seq),
                    norm
                );
            }
        }
        for id in sched.decode_step(1.0, &mut budget) {
            let seq = SequenceId(id.0);
            let before = cache.free_pages();
            cache.release(seq).expect("registered");
            println!(
                "step {:2}: retired seq {} — free pages {} → {}",
                step,
                id.0,
                before,
                cache.free_pages()
            );
        }
        step += 1;
    }

    let stats = sched.stats();
    assert_eq!(cache.used_pages(), 0, "every page must return to the pool");
    println!(
        "\nserved {} requests in {} decode ticks ({} tokens generated); \
         mean TTFT {:.0} steps, p95 latency {:.0} steps — no leaks, every page accounted for",
        stats.completed,
        stats.decode_time_s as usize,
        stats.generated_tokens,
        stats.mean_ttft_s,
        stats.p95_latency_s
    );
}
