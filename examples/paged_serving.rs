//! Functional serving path: a multi-sequence paged KV4 cache feeding the
//! fused attention kernel, with real admission/retirement — the data-plane
//! counterpart of the latency-simulating engine.
//!
//! ```text
//! cargo run --release --example paged_serving
//! ```

use qserve::core::kv_quant::KvPrecision;
use qserve::serve::attention_exec::paged_decode_attention;
use qserve::serve::kv_cache::{KvCacheConfig, PagedKvCache, SequenceId};
use qserve::tensor::rng::TensorRng;

fn main() {
    let cfg = KvCacheConfig {
        page_tokens: 16,
        kv_heads: 4,
        head_dim: 32,
        layers: 2,
        precision: KvPrecision::Int4,
    };
    let mut cache = PagedKvCache::new(cfg, 256);
    let mut rng = TensorRng::seed(3);
    let width = cfg.kv_heads * cfg.head_dim;

    println!(
        "paged KV4 cache: {} pages × {} tokens × {} B (per-head fp16 scales inline)\n",
        256,
        cfg.page_tokens,
        cfg.page_bytes()
    );

    // Admit three sequences with different prompt lengths.
    let prompts = [40usize, 25, 60];
    for (i, &len) in prompts.iter().enumerate() {
        let seq = SequenceId(i as u64);
        cache.register(seq).expect("fresh");
        for _ in 0..len {
            let k: Vec<f32> = (0..width).map(|_| rng.normal(1.0)).collect();
            let v: Vec<f32> = (0..width).map(|_| rng.normal(1.0)).collect();
            for layer in 0..cfg.layers {
                cache.append_token(seq, layer, &k, &v).expect("capacity");
            }
        }
        println!(
            "seq {}: prefilled {} tokens — cache now uses {}/{} pages",
            i,
            len,
            cache.used_pages(),
            256
        );
    }

    // Decode five steps for every active sequence (GQA: 8 query heads over
    // 4 kv heads).
    println!("\ndecoding 5 steps across all sequences:");
    let query_heads = 8;
    for step in 0..5 {
        for (i, _) in prompts.iter().enumerate() {
            let seq = SequenceId(i as u64);
            let q: Vec<f32> = (0..query_heads * cfg.head_dim).map(|_| rng.normal(1.0)).collect();
            let out = paged_decode_attention(&cache, seq, 0, &q).expect("active");
            // Append this step's KV (as the engine would after projections).
            let k: Vec<f32> = (0..width).map(|_| rng.normal(1.0)).collect();
            let v: Vec<f32> = (0..width).map(|_| rng.normal(1.0)).collect();
            for layer in 0..cfg.layers {
                cache.append_token(seq, layer, &k, &v).expect("capacity");
            }
            if step == 4 {
                let norm: f32 = out.iter().map(|x| x * x).sum::<f32>().sqrt();
                println!(
                    "  seq {}: context {:3} tokens, attention output ‖o‖ = {:.3}",
                    i,
                    cache.seq_len(seq),
                    norm
                );
            }
        }
    }

    // Retire sequence 1; its pages return to the pool.
    let before = cache.free_pages();
    cache.release(SequenceId(1)).expect("registered");
    println!(
        "\nretired seq 1: free pages {} → {} (no leaks — every page accounted for)",
        before,
        cache.free_pages()
    );
}
