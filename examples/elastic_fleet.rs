//! The control plane in one sitting: a diurnal tenant served three ways.
//!
//! A day-shaped arrival trace (near-idle trough, overloading crest) hits
//! a fleet of four A100s. The static minimum (one replica, three dark)
//! misses deadlines at the crest; the static maximum (all four always on)
//! makes every deadline but bills GPU-seconds through the trough; the
//! elastic fleet starts at one replica and lets a queue-pressure
//! autoscaler wake standbys through the same drain/restart machinery the
//! fault plans use — crest attainment at a fraction of the always-on bill.
//!
//! A second act shows the other control-plane verb: when one tenant's
//! pinned home saturates, the cluster copies the tenant's shared-prefix
//! KV pages over NVLink to an underloaded replica instead of shedding or
//! re-prefilling — the report prices the copy in bytes moved.
//!
//! ```text
//! cargo run --release --example elastic_fleet
//! ```

use qserve::gpusim::{GpuSpec, HostLink};
use qserve::model::ModelConfig;
use qserve::serve::cluster::{
    AutoscaleConfig, Cluster, LeastOutstanding, MigrationConfig, QueuePressureScaler,
};
use qserve::serve::request::{ArrivalPattern, Slo, SloSpec, WorkloadSpec};
use qserve::serve::scheduler::{MemoryAware, Reservation, SchedOptions};
use qserve::serve::{ServingEngine, SystemConfig};

fn main() {
    let a100 = ServingEngine::new(
        GpuSpec::a100(),
        ModelConfig::llama2_7b(),
        SystemConfig::QServePerChannel,
    )
    .expect("A100 serves Llama-2-7B");

    // Act 1 — the diurnal trace. 240 mixed-length requests whose rate
    // swings from 2 rps (trough) to 48 rps (crest) on a 20 s period; one
    // A100 handles the trough alone, the crest needs the whole fleet.
    let spec = WorkloadSpec::mixed(240, 20240603)
        .with_arrivals(ArrivalPattern::Diurnal {
            trough_rps: 2.0,
            peak_rps: 48.0,
            period_s: 20.0,
        })
        .with_slos(SloSpec::Cycle(vec![
            Slo::interactive(2.0, 8.0),
            Slo::standard(6.0, 20.0),
            Slo::best_effort(),
        ]));
    let serve = |mut cluster: Cluster| {
        cluster
            .serve_paged(
                &spec,
                || Box::new(MemoryAware::default()),
                Reservation::OnDemand,
                SchedOptions::default(),
            )
            .expect("serves")
    };
    let static_min = serve(Cluster::new(a100.clone(), 1, Box::new(LeastOutstanding)));
    let static_max = serve(Cluster::new(a100.clone(), 4, Box::new(LeastOutstanding)));
    let elastic = serve(Cluster::new(a100.clone(), 4, Box::new(LeastOutstanding)).with_autoscaler(
        AutoscaleConfig {
            policy: Box::new(QueuePressureScaler {
                min_replicas: 1,
                max_replicas: 4,
                scale_up_queue_s: 1.0,
                scale_down_queue_s: 0.25,
            }),
            interval_s: 1.0,
            initial_online: 1,
        },
    ));

    println!("diurnal trace: 240 requests, 2→48 rps over a 20 s period\n");
    println!(
        "{:<12} {:>9} {:>10} {:>9} {:>9}",
        "fleet", "completed", "tok/s", "SLO att", "GPU-s"
    );
    for (name, r) in
        [("1xA100", &static_min), ("4xA100", &static_max), ("elastic", &elastic)]
    {
        println!(
            "{:<12} {:>9} {:>10.0} {:>9.3} {:>9.1}",
            name, r.completed, r.goodput_tps, r.slo_attainment, r.gpu_seconds
        );
    }

    assert_eq!(elastic.completed + elastic.shed, 240, "no request may be lost");
    assert!(
        elastic.slo_attainment > static_min.slo_attainment,
        "waking standbys at the crest must beat the static minimum"
    );
    assert!(
        elastic.gpu_seconds < static_max.gpu_seconds,
        "scaling to zero-pressure troughs must undercut the always-on bill"
    );

    // Act 2 — prefix migration. One tenant, a 4096-token system prompt,
    // requests arriving faster than the pinned home can drain: with a
    // MigrationConfig the control plane re-pins the tenant and copies its
    // prefix pages to the idle replica over NVLink.
    let tenant = WorkloadSpec::shared_prefix(1, 4096, 48, 20240603)
        .with_arrivals(ArrivalPattern::Poisson { rate_rps: 48.0 });
    let share = SchedOptions { share_prefixes: true, ..SchedOptions::default() };
    let mut pair = Cluster::new(a100.clone(), 2, Box::new(LeastOutstanding)).with_migration(
        MigrationConfig {
            saturation_queue_s: 0.5,
            relief_ratio: 0.5,
            migrate_pages: true,
            link: HostLink::nvlink_p2p(),
        },
    );
    let moved = pair
        .serve_paged(&tenant, || Box::new(MemoryAware::default()), Reservation::OnDemand, share)
        .expect("serves");

    assert!(moved.migrations > 0, "the saturated home must trigger a migration");
    assert_eq!(moved.completed + moved.shed, 48, "migration loses nothing");
    println!(
        "\nsaturated tenant: {} migration(s) moved {:.1} MB of prefix KV over NVLink; \
         {} requests finished at {:.0} tok/s",
        moved.migrations,
        // lint: allow(raw-cast) -- u64 byte count → f64 for MB display only
        moved.migrated_bytes as f64 / 1e6,
        moved.completed,
        moved.goodput_tps
    );
}
