//! Heterogeneous fleet serving with SLO-aware admission control: a mixed
//! 2×A100 + 2×L40S fleet under sustained overload, comparing round-robin
//! against work-normalized routing (outstanding tokens ÷ replica decode
//! throughput) and admit-all against deadline-feasibility shedding.
//!
//! ```text
//! cargo run --release --example heterogeneous_fleet
//! ```

use qserve::gpusim::GpuSpec;
use qserve::model::ModelConfig;
use qserve::serve::cluster::{
    AdmissionPolicy, AdmitAll, Cluster, DeadlineFeasible, LeastOutstanding, RoundRobin,
    RoutingPolicy,
};
use qserve::serve::request::{ArrivalPattern, Slo, SloSpec, WorkloadSpec};
use qserve::serve::scheduler::{MemoryAware, Reservation, SchedOptions};
use qserve::serve::{ServingEngine, SystemConfig};

fn main() {
    let a100 = ServingEngine::new(
        GpuSpec::a100(),
        ModelConfig::llama2_7b(),
        SystemConfig::QServePerChannel,
    )
    .expect("A100 serves Llama-2-7B");
    let l40s = ServingEngine::new(
        GpuSpec::l40s(),
        ModelConfig::llama2_7b(),
        SystemConfig::QServePerGroup,
    )
    .expect("L40S serves Llama-2-7B");
    for e in [&a100, &l40s] {
        let s = e.speed_profile();
        println!(
            "{:<14} decode {:>5.0} tok/s  prefill {:>6.0} tok/s  inter-token {:>5.1} ms",
            s.gpu,
            s.decode_tps,
            s.prefill_tps,
            s.decode_step_s * 1e3
        );
    }
    let fleet = vec![a100.clone(), a100, l40s.clone(), l40s];

    // Sustained overload: the production mix at a Poisson rate well above
    // fleet capacity, with an interactive / standard / best-effort SLO mix.
    let spec = WorkloadSpec::mixed(768, 42)
        .with_arrivals(ArrivalPattern::Poisson { rate_rps: 96.0 })
        .with_slos(SloSpec::Cycle(vec![
            Slo::interactive(2.0, 8.0),
            Slo::standard(6.0, 20.0),
            Slo::best_effort(),
        ]));

    let run = |routing: Box<dyn RoutingPolicy>, admission: Box<dyn AdmissionPolicy>| {
        Cluster::heterogeneous(fleet.clone(), routing)
            .with_admission(admission)
            .serve_paged(
                &spec,
                || Box::new(MemoryAware::default()),
                Reservation::OnDemand,
                SchedOptions::default(),
            )
            .expect("serves")
    };

    println!("\nworkload: 768 mixed requests at 96 rps (overload); 2xA100 + 2xL40S\n");
    println!(
        "{:<18} {:<10} {:>9} {:>9} {:>8} {:>6} {:>8} {:>19}",
        "routing", "admission", "goodput", "tok/s", "SLO att", "shed", "p99", "per-replica util"
    );
    let mut results = std::collections::HashMap::new();
    for (rname, mk_r) in [
        ("round-robin", (|| Box::new(RoundRobin::default()) as Box<dyn RoutingPolicy>)
            as fn() -> Box<dyn RoutingPolicy>),
        ("least-outstanding", || Box::new(LeastOutstanding)),
    ] {
        for (aname, mk_a) in [
            ("admit-all", (|| Box::new(AdmitAll) as Box<dyn AdmissionPolicy>)
                as fn() -> Box<dyn AdmissionPolicy>),
            ("deadline", || Box::new(DeadlineFeasible)),
        ] {
            let r = run(mk_r(), mk_a());
            let utils: Vec<String> =
                r.per_replica.iter().map(|p| format!("{:.2}", p.utilization)).collect();
            println!(
                "{:<18} {:<10} {:>9.0} {:>9.0} {:>8.3} {:>6} {:>8.3} {:>19}",
                rname,
                aname,
                r.goodput_tps,
                r.throughput_tps,
                r.slo_attainment,
                r.shed,
                r.p99_latency_s,
                utils.join(" "),
            );
            results.insert((rname, aname), r);
        }
    }

    let rr = &results[&("round-robin", "admit-all")];
    let lo = &results[&("least-outstanding", "admit-all")];
    let gated = &results[&("least-outstanding", "deadline")];
    assert!(
        lo.goodput_tps > rr.goodput_tps,
        "work-normalized routing must lift mixed-fleet goodput"
    );
    assert!(
        gated.slo_attainment > lo.slo_attainment && gated.goodput_tps > lo.goodput_tps,
        "deadline admission must lift attainment and goodput under overload"
    );
    println!(
        "\nwork-normalized routing lifts goodput {:.0} → {:.0} tok/s (round-robin pegs the \
         L40S replicas while the A100s idle at {:.0}% utilization);",
        rr.goodput_tps,
        lo.goodput_tps,
        100.0 * rr.per_replica.iter().map(|p| p.utilization).fold(f64::INFINITY, f64::min),
    );
    println!(
        "deadline admission sheds {} infeasible requests to lift SLO attainment \
         {:.3} → {:.3} and goodput {:.0} → {:.0} tok/s.",
        gated.shed, lo.slo_attainment, gated.slo_attainment, lo.goodput_tps, gated.goodput_tps,
    );
}
