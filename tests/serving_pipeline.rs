//! Serving-system integration: scheduler conservation, memory bounds, cache
//! lifecycle under randomized workloads.

use qserve::core::kv_quant::KvPrecision;
use qserve::gpusim::GpuSpec;
use qserve::model::ModelConfig;
use qserve::serve::engine::Workload;
use qserve::serve::kv_cache::{KvCacheConfig, PagedKvCache, SequenceId};
use qserve::serve::request::{ArrivalPattern, LengthDist, WorkloadSpec};
use qserve::serve::scheduler::{Fcfs, MemoryAware, Reservation, ShortestJobFirst, UnboundedBudget};
use qserve::serve::{ServingEngine, SystemConfig};
use qserve::tensor::{prop, props};

#[test]
fn engine_completes_any_feasible_workload() {
    let e = ServingEngine::new(
        GpuSpec::a100(),
        ModelConfig::llama2_7b(),
        SystemConfig::QServePerChannel,
    )
    .unwrap();
    for (requests, batch) in [(1usize, 1usize), (7, 3), (64, 64), (100, 13)] {
        let wl = Workload {
            input_len: 64,
            output_len: 16,
            num_requests: requests,
        };
        let r = e.run_with_batch(&wl, batch);
        assert_eq!(r.completed, requests);
        let tokens = (requests * 16) as f64;
        assert!((r.throughput_tps * r.total_time_s - tokens).abs() < 1e-6 * tokens.max(1.0));
    }
}

#[test]
fn throughput_ordering_stable_across_workloads() {
    // QServe > best TRT must hold for short and long generations alike.
    let m = ModelConfig::llama2_7b();
    for (input, output) in [(256usize, 128usize), (1024, 512), (2048, 256)] {
        let wl = Workload {
            input_len: input,
            output_len: output,
            num_requests: 32,
        };
        let q = ServingEngine::new(GpuSpec::a100(), m.clone(), SystemConfig::QServePerChannel)
            .unwrap()
            .max_throughput(&wl)
            .unwrap()
            .throughput_tps;
        let t = ServingEngine::new(GpuSpec::a100(), m.clone(), SystemConfig::TrtW8A8)
            .unwrap()
            .max_throughput(&wl)
            .unwrap()
            .throughput_tps;
        assert!(q > t, "{}+{}: QServe {} ≤ TRT {}", input, output, q, t);
    }
}

#[test]
fn memory_constrained_batch_respected() {
    let e = ServingEngine::new(
        GpuSpec::l40s(),
        ModelConfig::llama2_70b(),
        SystemConfig::QServePerGroup,
    )
    .unwrap();
    let wl = Workload::paper(16);
    let batch = e.memory_max_batch(&wl);
    assert!(batch >= 1, "70B W4KV4 must fit L40S");
    // The plan's token capacity must cover the batch at peak length.
    assert!(e.plan().max_tokens >= (batch * wl.peak_len()) as u64);
}

#[test]
fn fixed_workload_report_identical_across_policies() {
    // The paper protocol is homogeneous: admission order cannot change the
    // wave composition, so FCFS and SJF must produce the *same* report —
    // the guarantee that keeps Table 4 / Figure 15 independent of the
    // scheduler refactor.
    let e = ServingEngine::new(
        GpuSpec::a100(),
        ModelConfig::llama2_7b(),
        SystemConfig::QServePerChannel,
    )
    .unwrap();
    let reqs = WorkloadSpec::paper(48).sample();
    let fcfs = e.run_scheduled(reqs.clone(), 16, Box::new(Fcfs), &mut UnboundedBudget);
    let sjf = e.run_scheduled(reqs, 16, Box::new(ShortestJobFirst), &mut UnboundedBudget);
    assert_eq!(fcfs, sjf);
    // And the legacy wrapper is the same path.
    assert_eq!(fcfs, e.run_with_batch(&Workload::paper(48), 16));
}

#[test]
fn heterogeneous_policies_complete_and_expose_percentiles() {
    let e = ServingEngine::new(
        GpuSpec::l40s(),
        ModelConfig::llama2_7b(),
        SystemConfig::QServePerGroup,
    )
    .unwrap();
    let spec = WorkloadSpec::mixed(40, 31)
        .with_arrivals(ArrivalPattern::Poisson { rate_rps: 8.0 });
    for report in [
        e.run_workload(&spec, Box::new(Fcfs)).expect("serves"),
        e.run_workload(&spec, Box::new(ShortestJobFirst)).expect("serves"),
        e.run_workload_paged(&spec, Box::new(MemoryAware::default()), Reservation::OnDemand)
            .expect("serves"),
    ] {
        assert_eq!(report.completed, 40);
        assert!(report.mean_ttft_s > 0.0);
        assert!(report.mean_ttft_s <= report.mean_request_latency_s);
        assert!(report.p50_latency_s <= report.p95_latency_s);
        assert!(report.p95_latency_s <= report.p99_latency_s);
        assert!(report.p99_latency_s <= report.max_request_latency_s + 1e-12);
        assert!(report.prefill_time_s + report.decode_time_s <= report.total_time_s + 1e-9);
    }
}

props! {
    /// Same seed ⇒ identical workload: request lengths and arrival times
    /// replay bit-for-bit, and every sample respects the configured bounds.
    fn prop_workload_sampling_seed_deterministic(rng, cases = 32) {
        let lo = rng.int_in(1, 64) as usize;
        let hi = lo + rng.int_in(0, 512) as usize;
        let out_lo = rng.int_in(1, 32) as usize;
        let out_hi = out_lo + rng.int_in(0, 128) as usize;
        let seed = rng.next_u64();
        let arrival = match rng.int_in(0, 2) {
            0 => ArrivalPattern::Batch,
            1 => ArrivalPattern::Uniform { rate_rps: 2.0 },
            _ => ArrivalPattern::Poisson { rate_rps: 2.0 },
        };
        let spec = WorkloadSpec {
            num_requests: rng.int_in(1, 24) as usize,
            input: LengthDist::Uniform { lo, hi },
            output: LengthDist::Bimodal {
                short: (out_lo, out_hi),
                long: (out_hi + 1, out_hi + 64),
                long_weight: 0.25,
            },
            arrival,
            seed,
        };
        let a = spec.sample();
        let b = spec.sample();
        assert_eq!(a, b, "same seed must replay the identical workload");
        let (ilo, ihi) = spec.input.bounds();
        let (olo, ohi) = spec.output.bounds();
        let mut prev_arrival = 0.0f64;
        for r in &a {
            assert!((ilo..=ihi).contains(&r.input_len), "input {} outside bounds", r.input_len);
            assert!((olo..=ohi).contains(&r.output_len), "output {} outside bounds", r.output_len);
            assert!(r.arrival_s >= prev_arrival, "arrivals must be non-decreasing");
            prev_arrival = r.arrival_s;
        }
        // A different seed almost surely changes a non-degenerate workload.
        if ihi > ilo && a.len() > 4 {
            let other = WorkloadSpec { seed: seed ^ 0xDEAD_BEEF, ..spec.clone() };
            assert_ne!(other.sample(), a, "distinct seeds should differ");
        }
    }

    /// The paged cache never loses or duplicates pages across random
    /// register/append/release interleavings.
    fn prop_cache_page_conservation(rng, cases = 16) {
        let len = rng.int_in(1, 59) as usize;
        let ops = prop::vec_u8(rng, 0, 2, len);
        let cfg = KvCacheConfig {
            page_tokens: 4,
            kv_heads: 2,
            head_dim: 8,
            layers: 2,
            precision: KvPrecision::Int4,
        };
        let total = 24;
        let mut cache = PagedKvCache::new(cfg, total);
        let width = cfg.kv_heads * cfg.head_dim;
        let feats = vec![0.5f32; width];
        let mut live: Vec<SequenceId> = Vec::new();
        let mut next_id = 0u64;
        for op in ops {
            match op {
                0 => {
                    let id = SequenceId(next_id);
                    next_id += 1;
                    cache.register(id).unwrap();
                    live.push(id);
                }
                1 => {
                    if let Some(&id) = live.first() {
                        for layer in 0..cfg.layers {
                            // Appends may legitimately hit OutOfPages.
                            let _ = cache.append_token(id, layer, &feats, &feats);
                        }
                    }
                }
                _ => {
                    if let Some(id) = live.pop() {
                        cache.release(id).unwrap();
                    }
                }
            }
            assert_eq!(cache.free_pages() + cache.used_pages(), total);
        }
        for id in live {
            cache.release(id).unwrap();
        }
        assert_eq!(cache.free_pages(), total);
    }

    /// Round trip through the page bytes is within one quantization step for
    /// arbitrary feature values.
    fn prop_cache_round_trip_error_bounded(rng, cases = 16) {
        let feats = prop::vec_f32(rng, -8.0, 8.0, 16);
        let cfg = KvCacheConfig {
            page_tokens: 4,
            kv_heads: 2,
            head_dim: 8,
            layers: 1,
            precision: KvPrecision::Int4,
        };
        let mut cache = PagedKvCache::new(cfg, 8);
        let s = SequenceId(0);
        cache.register(s).unwrap();
        cache.append_token(s, 0, &feats, &feats).unwrap();
        for head in 0..2 {
            let (keys, _) = cache.read_head(s, 0, head).unwrap();
            let back = qserve::core::kv_quant::dequantize_head(&keys[0]);
            for (a, b) in feats[head * 8..(head + 1) * 8].iter().zip(&back) {
                // One step + fp16 rounding of the stored scale.
                assert!((a - b).abs() <= keys[0].params.scale * 1.5 + 1e-3);
            }
        }
    }
}
