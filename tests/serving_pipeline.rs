//! Serving-system integration: scheduler conservation, memory bounds, cache
//! lifecycle under randomized workloads.

use qserve::core::kv_quant::KvPrecision;
use qserve::gpusim::GpuSpec;
use qserve::model::ModelConfig;
use qserve::serve::engine::{ServeConfig, Workload};
use qserve::serve::kv_cache::{KvCacheConfig, PagedKvCache, SequenceId};
use qserve::serve::request::{ArrivalPattern, LengthDist, PrefixSharing, SloSpec, WorkloadSpec};
use qserve::serve::scheduler::{
    Fcfs, KvBudget, MemoryAware, PageBudget, Reservation, SchedOptions, Scheduler,
    SchedulingPolicy, ShortestJobFirst, UnboundedBudget,
};
use qserve::serve::{ServingEngine, SystemConfig};
use qserve::tensor::{prop, props};

#[test]
fn engine_completes_any_feasible_workload() {
    let e = ServingEngine::new(
        GpuSpec::a100(),
        ModelConfig::llama2_7b(),
        SystemConfig::QServePerChannel,
    )
    .unwrap();
    for (requests, batch) in [(1usize, 1usize), (7, 3), (64, 64), (100, 13)] {
        let wl = Workload {
            input_len: 64,
            output_len: 16,
            num_requests: requests,
        };
        let r = e
            .serve(&wl.spec(), Box::new(Fcfs), ServeConfig::fixed_batch(batch))
            .expect("serves");
        assert_eq!(r.completed, requests);
        let tokens = (requests * 16) as f64;
        assert!((r.throughput_tps * r.total_time_s - tokens).abs() < 1e-6 * tokens.max(1.0));
    }
}

#[test]
fn throughput_ordering_stable_across_workloads() {
    // QServe > best TRT must hold for short and long generations alike.
    let m = ModelConfig::llama2_7b();
    for (input, output) in [(256usize, 128usize), (1024, 512), (2048, 256)] {
        let wl = Workload {
            input_len: input,
            output_len: output,
            num_requests: 32,
        };
        let q = ServingEngine::new(GpuSpec::a100(), m.clone(), SystemConfig::QServePerChannel)
            .unwrap()
            .max_throughput(&wl)
            .unwrap()
            .throughput_tps;
        let t = ServingEngine::new(GpuSpec::a100(), m.clone(), SystemConfig::TrtW8A8)
            .unwrap()
            .max_throughput(&wl)
            .unwrap()
            .throughput_tps;
        assert!(q > t, "{}+{}: QServe {} ≤ TRT {}", input, output, q, t);
    }
}

#[test]
fn memory_constrained_batch_respected() {
    let e = ServingEngine::new(
        GpuSpec::l40s(),
        ModelConfig::llama2_70b(),
        SystemConfig::QServePerGroup,
    )
    .unwrap();
    let wl = Workload::paper(16);
    let batch = e.memory_max_batch(&wl);
    assert!(batch >= 1, "70B W4KV4 must fit L40S");
    // The plan's token capacity must cover the batch at peak length.
    assert!(e.plan().max_tokens >= (batch * wl.peak_len()) as u64);
}

#[test]
fn fixed_workload_report_identical_across_policies() {
    // The paper protocol is homogeneous: admission order cannot change the
    // wave composition, so FCFS and SJF must produce the *same* report —
    // the guarantee that keeps Table 4 / Figure 15 independent of the
    // scheduler refactor.
    let e = ServingEngine::new(
        GpuSpec::a100(),
        ModelConfig::llama2_7b(),
        SystemConfig::QServePerChannel,
    )
    .unwrap();
    let reqs = WorkloadSpec::paper(48).sample();
    let fcfs = e.run_scheduled(reqs.clone(), 16, Box::new(Fcfs), &mut UnboundedBudget);
    let sjf = e.run_scheduled(reqs, 16, Box::new(ShortestJobFirst), &mut UnboundedBudget);
    assert_eq!(fcfs, sjf);
    // And the unified entry point is the same path, bit for bit.
    assert_eq!(
        fcfs,
        e.serve(
            &Workload::paper(48).spec(),
            Box::new(Fcfs),
            ServeConfig::fixed_batch(16),
        )
        .expect("serves")
    );
}

#[test]
fn heterogeneous_policies_complete_and_expose_percentiles() {
    let e = ServingEngine::new(
        GpuSpec::l40s(),
        ModelConfig::llama2_7b(),
        SystemConfig::QServePerGroup,
    )
    .unwrap();
    let spec = WorkloadSpec::mixed(40, 31)
        .with_arrivals(ArrivalPattern::Poisson { rate_rps: 8.0 });
    for report in [
        e.run_workload(&spec, Box::new(Fcfs)).expect("serves"),
        e.run_workload(&spec, Box::new(ShortestJobFirst)).expect("serves"),
        e.run_workload_paged(&spec, Box::new(MemoryAware::default()), Reservation::OnDemand)
            .expect("serves"),
    ] {
        assert_eq!(report.completed, 40);
        assert!(report.mean_ttft_s > 0.0);
        assert!(report.mean_ttft_s <= report.mean_request_latency_s);
        assert!(report.p50_latency_s <= report.p95_latency_s);
        assert!(report.p95_latency_s <= report.p99_latency_s);
        assert!(report.p99_latency_s <= report.max_request_latency_s + 1e-12);
        assert!(report.prefill_time_s + report.decode_time_s <= report.total_time_s + 1e-9);
    }
}

props! {
    /// Same seed ⇒ identical workload: request lengths and arrival times
    /// replay bit-for-bit, and every sample respects the configured bounds.
    fn prop_workload_sampling_seed_deterministic(rng, cases = 32) {
        let lo = rng.int_in(1, 64) as usize;
        let hi = lo + rng.int_in(0, 512) as usize;
        let out_lo = rng.int_in(1, 32) as usize;
        let out_hi = out_lo + rng.int_in(0, 128) as usize;
        let seed = rng.next_u64();
        let arrival = match rng.int_in(0, 2) {
            0 => ArrivalPattern::Batch,
            1 => ArrivalPattern::Uniform { rate_rps: 2.0 },
            _ => ArrivalPattern::Poisson { rate_rps: 2.0 },
        };
        let spec = WorkloadSpec {
            num_requests: rng.int_in(1, 24) as usize,
            input: LengthDist::Uniform { lo, hi },
            output: LengthDist::Bimodal {
                short: (out_lo, out_hi),
                long: (out_hi + 1, out_hi + 64),
                long_weight: 0.25,
            },
            arrival,
            sharing: PrefixSharing::None,
            slo: SloSpec::None,
            seed,
        };
        let a = spec.sample();
        let b = spec.sample();
        assert_eq!(a, b, "same seed must replay the identical workload");
        let (ilo, ihi) = spec.input.bounds();
        let (olo, ohi) = spec.output.bounds();
        let mut prev_arrival = 0.0f64;
        for r in &a {
            assert!((ilo..=ihi).contains(&r.input_len), "input {} outside bounds", r.input_len);
            assert!((olo..=ohi).contains(&r.output_len), "output {} outside bounds", r.output_len);
            assert!(r.arrival_s >= prev_arrival, "arrivals must be non-decreasing");
            prev_arrival = r.arrival_s;
        }
        // A different seed almost surely changes a non-degenerate workload.
        if ihi > ilo && a.len() > 4 {
            let other = WorkloadSpec { seed: seed ^ 0xDEAD_BEEF, ..spec.clone() };
            assert_ne!(other.sample(), a, "distinct seeds should differ");
        }
    }

    /// The paged cache never loses or duplicates pages across random
    /// register/append/release interleavings.
    fn prop_cache_page_conservation(rng, cases = 16) {
        let len = rng.int_in(1, 59) as usize;
        let ops = prop::vec_u8(rng, 0, 2, len);
        let cfg = KvCacheConfig {
            page_tokens: 4,
            kv_heads: 2,
            head_dim: 8,
            layers: 2,
            precision: KvPrecision::Int4,
        };
        let total = 24;
        let mut cache = PagedKvCache::new(cfg, total);
        let width = cfg.kv_heads * cfg.head_dim;
        let feats = vec![0.5f32; width];
        let mut live: Vec<SequenceId> = Vec::new();
        let mut next_id = 0u64;
        for op in ops {
            match op {
                0 => {
                    let id = SequenceId(next_id);
                    next_id += 1;
                    cache.register(id).unwrap();
                    live.push(id);
                }
                1 => {
                    if let Some(&id) = live.first() {
                        for layer in 0..cfg.layers {
                            // Appends may legitimately hit OutOfPages.
                            let _ = cache.append_token(id, layer, &feats, &feats);
                        }
                    }
                }
                _ => {
                    if let Some(id) = live.pop() {
                        cache.release(id).unwrap();
                    }
                }
            }
            assert_eq!(cache.free_pages() + cache.used_pages(), total);
        }
        for id in live {
            cache.release(id).unwrap();
        }
        assert_eq!(cache.free_pages(), total);
    }

    /// Copy-on-write sharing under random fork/append/release
    /// interleavings: every page referenced by a live sequence keeps
    /// refcount ≥ 1 (and the refcount equals the number of referencing
    /// sequences), unique used + free == total at every step, and a fork
    /// reads back exactly its parent's prefix before (and after) any
    /// divergence.
    fn prop_cow_sharing_invariants(rng, cases = 24) {
        let cfg = KvCacheConfig {
            page_tokens: 4,
            kv_heads: 2,
            head_dim: 8,
            layers: 2,
            precision: KvPrecision::Int4,
        };
        let total = 32;
        let mut cache = PagedKvCache::new(cfg, total);
        let width = cfg.kv_heads * cfg.head_dim;
        let mut live: Vec<SequenceId> = Vec::new();
        let mut next_id = 0u64;
        let check = |cache: &PagedKvCache, live: &[SequenceId]| {
            assert_eq!(cache.used_pages() + cache.free_pages(), total, "conservation");
            // Refcounts must equal the number of live referencing sequences.
            let mut refs = std::collections::HashMap::new();
            for &s in live {
                for layer in 0..cfg.layers {
                    for &p in cache.layer_pages(s, layer) {
                        *refs.entry(p).or_insert(0u32) += 1;
                    }
                }
            }
            assert_eq!(refs.len(), cache.used_pages(), "table pages = unique used pages");
            for (&p, &n) in &refs {
                assert!(n >= 1);
                assert_eq!(cache.page_refcount(p), n, "page {} refcount drift", p);
            }
        };
        for _ in 0..40 {
            match rng.int_in(0, 9) {
                0 | 1 => {
                    let id = SequenceId(next_id);
                    next_id += 1;
                    cache.register(id).unwrap();
                    live.push(id);
                }
                2 | 3 | 4 | 5 => {
                    if !live.is_empty() {
                        let s = live[rng.int_in(0, live.len() as i64 - 1) as usize];
                        let feats: Vec<f32> =
                            (0..width).map(|_| rng.uniform(-2.0, 2.0)).collect();
                        // May legitimately hit OutOfPages (incl. mid-COW).
                        let mut ok = true;
                        for layer in 0..cfg.layers {
                            if !ok { break; }
                            ok = cache.append_token(s, layer, &feats, &feats).is_ok();
                        }
                    }
                }
                6 | 7 => {
                    if !live.is_empty() {
                        let pi = rng.int_in(0, live.len() as i64 - 1) as usize;
                        let parent = live[pi];
                        let plen = cache.seq_len(parent);
                        let prefix = rng.int_in(0, plen as i64) as usize;
                        let child = SequenceId(next_id);
                        next_id += 1;
                        cache.fork(parent, child, prefix).unwrap();
                        live.push(child);
                        // The forked view is the parent's prefix, byte-equal.
                        for head in 0..cfg.kv_heads {
                            let (pk, pv) = cache.read_head(parent, 1, head).unwrap();
                            let (ck, cv) = cache.read_head(child, 1, head).unwrap();
                            assert_eq!(ck.len().min(prefix), ck.len());
                            assert_eq!(ck[..], pk[..ck.len()], "fork K diverged pre-write");
                            assert_eq!(cv[..], pv[..cv.len()], "fork V diverged pre-write");
                        }
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let i = rng.int_in(0, live.len() as i64 - 1) as usize;
                        let s = live.swap_remove(i);
                        cache.release(s).unwrap();
                    }
                }
            }
            check(&cache, &live);
        }
        for s in live.drain(..) {
            cache.release(s).unwrap();
        }
        assert_eq!(cache.free_pages(), total, "all pages recycled at the end");
    }

    /// Scheduler conservation over random policy × workload × budget ×
    /// option grids: every generated request finishes exactly once, no
    /// request is both Finished and Preempted at exit, and each request's
    /// output length matches its spec.
    fn prop_scheduler_conserves_requests(rng, cases = 24) {
        let n = rng.int_in(2, 14) as usize;
        let seed = rng.next_u64();
        let arrival = match rng.int_in(0, 2) {
            0 => ArrivalPattern::Batch,
            1 => ArrivalPattern::Uniform { rate_rps: 4.0 },
            _ => ArrivalPattern::Poisson { rate_rps: 4.0 },
        };
        let sharing = match rng.int_in(0, 2) {
            0 => PrefixSharing::None,
            _ => PrefixSharing::Groups { groups: 2, prefix_len: 12 },
        };
        let spec = WorkloadSpec {
            num_requests: n,
            input: LengthDist::Uniform { lo: 2, hi: 9 },
            output: LengthDist::Uniform { lo: 1, hi: 6 },
            arrival,
            sharing,
            slo: SloSpec::None,
            seed,
        };
        let requests = spec.sample();
        let expected: Vec<(u64, usize)> =
            requests.iter().map(|r| (r.id.0, r.output_len)).collect();
        let policy: Box<dyn SchedulingPolicy> = match rng.int_in(0, 2) {
            0 => Box::new(Fcfs),
            1 => Box::new(ShortestJobFirst),
            _ => Box::new(MemoryAware { headroom: 0.25 }),
        };
        // A pool tight enough to preempt sometimes but able to hold any
        // single request (peak ≤ 30 tokens = 8 pages ≤ 12).
        let mut paged;
        let mut unbounded = UnboundedBudget;
        let budget: &mut dyn KvBudget = if rng.int_in(0, 1) == 0 {
            &mut unbounded
        } else {
            let mode = if rng.int_in(0, 1) == 0 { Reservation::Peak } else { Reservation::OnDemand };
            paged = PageBudget::new(4, 1, 12, mode);
            &mut paged
        };
        let opts = SchedOptions {
            share_prefixes: rng.int_in(0, 1) == 1,
            chunk_tokens: match rng.int_in(0, 2) {
                0 => None,
                1 => Some(2),
                _ => Some(5),
            },
            ..SchedOptions::default()
        };
        let batch_limit = rng.int_in(1, 4) as usize;
        let mut sched = Scheduler::with_options(requests, batch_limit, policy, opts);
        let mut guard = 0;
        while !sched.is_done() {
            guard += 1;
            assert!(guard < 100_000, "scheduler failed to converge");
            sched.admit(budget);
            if let Some(c) = opts.chunk_tokens {
                let chunks = sched.prefill_chunks(c);
                if !chunks.is_empty() {
                    sched.charge_prefill(0.01 * chunks.len() as f64);
                }
            }
            if sched.running().is_empty() {
                sched.idle_until_arrival();
                continue;
            }
            sched.make_room(budget);
            if sched.decoding_seq_lens().is_empty() {
                continue;
            }
            sched.decode_step(0.01, budget);
        }
        let finished = sched.finished();
        assert_eq!(finished.len(), n, "every request finishes");
        let mut seen = std::collections::HashSet::new();
        for r in finished {
            assert!(seen.insert(r.id.0), "request {} finished twice", r.id.0);
            assert_eq!(
                r.state,
                qserve::serve::request::RequestState::Finished,
                "request {} exits in a non-Finished state",
                r.id.0
            );
            let (_, expect_out) = expected
                .iter()
                .find(|&&(id, _)| id == r.id.0)
                .expect("finished an ungenerated request");
            assert_eq!(r.generated, *expect_out, "request {} output length", r.id.0);
            assert_eq!(r.remaining(), 0);
        }
    }

    /// Round trip through the page bytes is within one quantization step for
    /// arbitrary feature values.
    fn prop_cache_round_trip_error_bounded(rng, cases = 16) {
        let feats = prop::vec_f32(rng, -8.0, 8.0, 16);
        let cfg = KvCacheConfig {
            page_tokens: 4,
            kv_heads: 2,
            head_dim: 8,
            layers: 1,
            precision: KvPrecision::Int4,
        };
        let mut cache = PagedKvCache::new(cfg, 8);
        let s = SequenceId(0);
        cache.register(s).unwrap();
        cache.append_token(s, 0, &feats, &feats).unwrap();
        for head in 0..2 {
            let (keys, _) = cache.read_head(s, 0, head).unwrap();
            let back = qserve::core::kv_quant::dequantize_head(&keys[0]);
            for (a, b) in feats[head * 8..(head + 1) * 8].iter().zip(&back) {
                // One step + fp16 rounding of the stored scale.
                assert!((a - b).abs() <= keys[0].params.scale * 1.5 + 1e-3);
            }
        }
    }
}
