//! Serving-system integration: scheduler conservation, memory bounds, cache
//! lifecycle under randomized workloads.

use qserve::core::kv_quant::KvPrecision;
use qserve::gpusim::GpuSpec;
use qserve::model::ModelConfig;
use qserve::serve::engine::Workload;
use qserve::serve::kv_cache::{KvCacheConfig, PagedKvCache, SequenceId};
use qserve::serve::{ServingEngine, SystemConfig};
use qserve::tensor::{prop, props};

#[test]
fn engine_completes_any_feasible_workload() {
    let e = ServingEngine::new(
        GpuSpec::a100(),
        ModelConfig::llama2_7b(),
        SystemConfig::QServePerChannel,
    )
    .unwrap();
    for (requests, batch) in [(1usize, 1usize), (7, 3), (64, 64), (100, 13)] {
        let wl = Workload {
            input_len: 64,
            output_len: 16,
            num_requests: requests,
        };
        let r = e.run_with_batch(&wl, batch);
        assert_eq!(r.completed, requests);
        let tokens = (requests * 16) as f64;
        assert!((r.throughput_tps * r.total_time_s - tokens).abs() < 1e-6 * tokens.max(1.0));
    }
}

#[test]
fn throughput_ordering_stable_across_workloads() {
    // QServe > best TRT must hold for short and long generations alike.
    let m = ModelConfig::llama2_7b();
    for (input, output) in [(256usize, 128usize), (1024, 512), (2048, 256)] {
        let wl = Workload {
            input_len: input,
            output_len: output,
            num_requests: 32,
        };
        let q = ServingEngine::new(GpuSpec::a100(), m.clone(), SystemConfig::QServePerChannel)
            .unwrap()
            .max_throughput(&wl)
            .unwrap()
            .throughput_tps;
        let t = ServingEngine::new(GpuSpec::a100(), m.clone(), SystemConfig::TrtW8A8)
            .unwrap()
            .max_throughput(&wl)
            .unwrap()
            .throughput_tps;
        assert!(q > t, "{}+{}: QServe {} ≤ TRT {}", input, output, q, t);
    }
}

#[test]
fn memory_constrained_batch_respected() {
    let e = ServingEngine::new(
        GpuSpec::l40s(),
        ModelConfig::llama2_70b(),
        SystemConfig::QServePerGroup,
    )
    .unwrap();
    let wl = Workload::paper(16);
    let batch = e.memory_max_batch(&wl);
    assert!(batch >= 1, "70B W4KV4 must fit L40S");
    // The plan's token capacity must cover the batch at peak length.
    assert!(e.plan().max_tokens >= (batch * wl.peak_len()) as u64);
}

props! {
    /// The paged cache never loses or duplicates pages across random
    /// register/append/release interleavings.
    fn prop_cache_page_conservation(rng, cases = 16) {
        let len = rng.int_in(1, 59) as usize;
        let ops = prop::vec_u8(rng, 0, 2, len);
        let cfg = KvCacheConfig {
            page_tokens: 4,
            kv_heads: 2,
            head_dim: 8,
            layers: 2,
            precision: KvPrecision::Int4,
        };
        let total = 24;
        let mut cache = PagedKvCache::new(cfg, total);
        let width = cfg.kv_heads * cfg.head_dim;
        let feats = vec![0.5f32; width];
        let mut live: Vec<SequenceId> = Vec::new();
        let mut next_id = 0u64;
        for op in ops {
            match op {
                0 => {
                    let id = SequenceId(next_id);
                    next_id += 1;
                    cache.register(id).unwrap();
                    live.push(id);
                }
                1 => {
                    if let Some(&id) = live.first() {
                        for layer in 0..cfg.layers {
                            // Appends may legitimately hit OutOfPages.
                            let _ = cache.append_token(id, layer, &feats, &feats);
                        }
                    }
                }
                _ => {
                    if let Some(id) = live.pop() {
                        cache.release(id).unwrap();
                    }
                }
            }
            assert_eq!(cache.free_pages() + cache.used_pages(), total);
        }
        for id in live {
            cache.release(id).unwrap();
        }
        assert_eq!(cache.free_pages(), total);
    }

    /// Round trip through the page bytes is within one quantization step for
    /// arbitrary feature values.
    fn prop_cache_round_trip_error_bounded(rng, cases = 16) {
        let feats = prop::vec_f32(rng, -8.0, 8.0, 16);
        let cfg = KvCacheConfig {
            page_tokens: 4,
            kv_heads: 2,
            head_dim: 8,
            layers: 1,
            precision: KvPrecision::Int4,
        };
        let mut cache = PagedKvCache::new(cfg, 8);
        let s = SequenceId(0);
        cache.register(s).unwrap();
        cache.append_token(s, 0, &feats, &feats).unwrap();
        for head in 0..2 {
            let (keys, _) = cache.read_head(s, 0, head).unwrap();
            let back = qserve::core::kv_quant::dequantize_head(&keys[0]);
            for (a, b) in feats[head * 8..(head + 1) * 8].iter().zip(&back) {
                // One step + fp16 rounding of the stored scale.
                assert!((a - b).abs() <= keys[0].params.scale * 1.5 + 1e-3);
            }
        }
    }
}
