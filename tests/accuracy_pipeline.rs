//! End-to-end accuracy pipeline: synthetic model → QoQ quantization →
//! deployment-faithful evaluation, reproducing Table 2/3's orderings.

use qserve::core::kv_quant::KvPrecision;
use qserve::core::pipeline::{QoqConfig, WeightGranularity};
use qserve::model::eval::{
    custom_forward_logits, pseudo_perplexity_from_logits, quantize_model, top1_agreement,
};
use qserve::model::forward::forward_logits;
use qserve::model::synth::{SynthesisOptions, SyntheticModel};
use qserve::model::ModelConfig;
use qserve::tensor::rng::TensorRng;
use qserve::tensor::stats::mse;

fn setup() -> (SyntheticModel, Vec<u32>, Vec<u32>) {
    let cfg = SyntheticModel::reduced_config(&ModelConfig::llama2_7b(), 128, 2);
    let model = SyntheticModel::generate(cfg, SynthesisOptions::default());
    let calib = TensorRng::seed(11).token_sequence(64, model.config.vocab);
    let eval = TensorRng::seed(22).token_sequence(96, model.config.vocab);
    (model, calib, eval)
}

#[test]
fn qoq_ladder_beats_rtn_and_w4a4() {
    let (model, calib, eval) = setup();
    let ref_logits = forward_logits(&model, &eval);
    let g = WeightGranularity::PerGroup(32);

    let run = |cfg: &QoqConfig, act_bits: Option<u8>, kv: KvPrecision| -> f64 {
        let q = quantize_model(&model, cfg, &calib);
        let logits = custom_forward_logits(&q.model, &q.rotations, act_bits, kv, &eval);
        mse(&ref_logits, &logits)
    };

    let qoq = run(
        &QoqConfig {
            weight_granularity: g,
            ..QoqConfig::w4a8kv4_g128()
        },
        Some(8),
        KvPrecision::Int4,
    );
    let rtn = run(&QoqConfig::rtn(g), Some(8), KvPrecision::Int4);
    // QuaRot-style W4A4: rotation + clip, INT4 activations.
    let w4a4 = run(
        &QoqConfig {
            rotation: true,
            weight_clipping: true,
            ..QoqConfig::rtn(g)
        },
        Some(4),
        KvPrecision::Int4,
    );
    assert!(qoq < rtn, "QoQ {} must beat RTN {}", qoq, rtn);
    assert!(qoq < w4a4, "QoQ(W4A8) {} must beat W4A4 {}", qoq, w4a4);
}

#[test]
fn gqa_model_quantizes_cleanly() {
    // Llama-3 style 4:1 GQA through the whole pipeline.
    let cfg = SyntheticModel::reduced_config(&ModelConfig::llama3_8b(), 128, 2);
    let model = SyntheticModel::generate(cfg, SynthesisOptions::default());
    let calib = TensorRng::seed(1).token_sequence(48, model.config.vocab);
    let eval = TensorRng::seed(2).token_sequence(64, model.config.vocab);
    let q = quantize_model(
        &model,
        &QoqConfig {
            weight_granularity: WeightGranularity::PerGroup(32),
            ..QoqConfig::w4a8kv4_g128()
        },
        &calib,
    );
    let ref_logits = forward_logits(&model, &eval);
    let logits = custom_forward_logits(&q.model, &q.rotations, Some(8), KvPrecision::Int4, &eval);
    assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    let agree = top1_agreement(&ref_logits, &logits);
    assert!(agree > 0.5, "GQA agreement collapsed: {}", agree);
}

#[test]
fn perplexity_finite_and_ordered_by_kv_bits() {
    let (model, _, eval) = setup();
    let no_rot = vec![None; model.blocks.len()];
    let mut ppl = Vec::new();
    for kv in [KvPrecision::Fp16, KvPrecision::Int8, KvPrecision::Int4] {
        let logits = custom_forward_logits(&model, &no_rot, None, kv, &eval);
        ppl.push(pseudo_perplexity_from_logits(&logits, &eval));
    }
    assert!(ppl.iter().all(|p| p.is_finite()));
    // FP16 ≤ KV8 ≤ KV4 in damage (allow tiny noise at KV8).
    assert!(ppl[1] <= ppl[2] * 1.05, "KV8 {} vs KV4 {}", ppl[1], ppl[2]);
}

#[test]
fn longer_contexts_do_not_explode_quantized_model() {
    // Table 5's qualitative claim: QoQ holds up at long context.
    let (model, calib, _) = setup();
    let q = quantize_model(
        &model,
        &QoqConfig {
            weight_granularity: WeightGranularity::PerGroup(32),
            ..QoqConfig::w4a8kv4_g128()
        },
        &calib,
    );
    let mut agreements = Vec::new();
    for len in [32usize, 128, 320] {
        let eval = TensorRng::seed(len as u64).token_sequence(len, model.config.vocab);
        let ref_logits = forward_logits(&model, &eval);
        let logits =
            custom_forward_logits(&q.model, &q.rotations, Some(8), KvPrecision::Int4, &eval);
        agreements.push(top1_agreement(&ref_logits, &logits));
    }
    // No catastrophic degradation with length: final ≥ 70% of first.
    assert!(
        agreements[2] >= agreements[0] * 0.7,
        "long-context collapse: {:?}",
        agreements
    );
}
