//! Cluster-serving integration: routing conservation under randomized
//! workloads, single-replica equivalence, and tensor-parallel identities.

use qserve::gpusim::{GpuSpec, TpGroup};
use qserve::model::ModelConfig;
use qserve::serve::cluster::{
    AdmissionPolicy, AdmitAll, Cluster, DeadlineFeasible, LeastOutstanding, PrefixAffinity,
    PriorityShed, RoundRobin, RoutingPolicy,
};
use qserve::serve::request::{
    ArrivalPattern, LengthDist, PrefixSharing, Slo, SloSpec, WorkloadSpec,
};
use qserve::serve::scheduler::{
    Fcfs, MemoryAware, PreemptionMode, Reservation, SchedOptions, SchedulingPolicy,
};
use qserve::serve::{FaultPlan, ServingEngine, SystemConfig};
use qserve::tensor::props;

fn engine() -> ServingEngine {
    ServingEngine::new(
        GpuSpec::a100(),
        ModelConfig::llama2_7b(),
        SystemConfig::QServePerChannel,
    )
    .expect("A100 serves Llama-2-7B")
}

fn l40s_engine() -> ServingEngine {
    ServingEngine::new(
        GpuSpec::l40s(),
        ModelConfig::llama2_7b(),
        SystemConfig::QServePerGroup,
    )
    .expect("L40S serves Llama-2-7B")
}

#[test]
fn one_replica_tp1_cluster_equals_single_engine_bitwise() {
    // The acceptance identity: a 1-replica TP=1 cluster run is the
    // single-engine run, bit for bit, for every routing policy.
    let e = engine();
    let spec = WorkloadSpec::shared_prefix(4, 1024, 32, 19);
    let opts = SchedOptions { share_prefixes: true, chunk_tokens: Some(512), ..SchedOptions::default() };
    let single = e
        .run_workload_paged_with(
            &spec,
            Box::new(MemoryAware::default()),
            Reservation::OnDemand,
            opts,
        )
        .expect("serves");
    let policies: Vec<Box<dyn RoutingPolicy>> = vec![
        Box::new(RoundRobin::default()),
        Box::new(LeastOutstanding),
        Box::new(PrefixAffinity::default()),
    ];
    for policy in policies {
        let report = Cluster::new(e.clone(), 1, policy)
            .serve_paged(
                &spec,
                || Box::new(MemoryAware::default()),
                Reservation::OnDemand,
                opts,
            )
            .expect("serves");
        assert!(report.matches_single_engine(&single));
    }
}

#[test]
fn tp1_engine_unchanged_and_tp_group_memory_plan_scales() {
    let e1 = engine();
    let etp = ServingEngine::with_tp(
        GpuSpec::a100(),
        ModelConfig::llama2_7b(),
        SystemConfig::QServePerChannel,
        TpGroup::single(),
    )
    .expect("builds");
    assert_eq!(e1.plan(), etp.plan());
    assert_eq!(
        e1.decode_step_latency(32, 1024).to_bits(),
        etp.decode_step_latency(32, 1024).to_bits()
    );
    let e4 = ServingEngine::with_tp(
        GpuSpec::a100(),
        ModelConfig::llama2_7b(),
        SystemConfig::QServePerChannel,
        TpGroup::nvlink(4),
    )
    .expect("builds");
    assert!(e4.plan().max_tokens > e1.plan().max_tokens);
}

#[test]
fn empty_fault_plan_is_bit_identical_to_the_fault_free_driver() {
    // The identity the whole fault layer hangs on: with no faults, the
    // faulty driver IS the fault-free driver — the entire report, every
    // float bit, every per-replica row, compared with plain `assert_eq!`.
    let spec = WorkloadSpec {
        num_requests: 24,
        input: LengthDist::Uniform { lo: 64, hi: 768 },
        output: LengthDist::Uniform { lo: 16, hi: 96 },
        arrival: ArrivalPattern::Poisson { rate_rps: 4.0 },
        sharing: PrefixSharing::Groups { groups: 3, prefix_len: 512 },
        slo: SloSpec::Cycle(vec![
            Slo::interactive(2.0, 8.0),
            Slo::standard(6.0, 20.0),
            Slo::best_effort(),
        ]),
        seed: 77,
    };
    for preemption in [PreemptionMode::Recompute, PreemptionMode::Swap] {
        let opts = SchedOptions {
            share_prefixes: true,
            chunk_tokens: Some(256),
            preemption,
        };
        let mut cluster = Cluster::new(engine(), 3, Box::new(RoundRobin::default()));
        let plain = cluster
            .serve_paged(&spec, || Box::new(MemoryAware::default()), Reservation::OnDemand, opts)
            .expect("serves");
        let faulty = cluster
            .serve_paged_faulty(
                &spec,
                || Box::new(MemoryAware::default()),
                Reservation::OnDemand,
                opts,
                &FaultPlan::none(),
            )
            .expect("serves");
        assert_eq!(plain, faulty, "an empty fault plan must be a no-op, bit for bit");
        assert_eq!(plain.requeued, 0);
        assert_eq!(plain.lost_prefill_tokens, 0);
        assert_eq!(plain.last_requeued_finish_s, 0.0);
        for rep in &plain.per_replica {
            assert_eq!(rep.requeued_away, 0);
            assert_eq!(rep.restarts, 0);
        }
    }
}

props! {
    /// Faults conserve the workload: under a random seeded plan of
    /// crashes, drains, restarts and rolling upgrades — in both
    /// recompute and swap preemption modes — every generated request is
    /// finished exactly once or shed exactly once, never lost, never
    /// duplicated; requeue accounting balances per replica and
    /// fleet-wide. (The driver additionally audits each crashed
    /// replica's page ledger via `PageBudget::assert_consistent`.)
    fn prop_faults_never_lose_or_duplicate_requests(rng, cases = 10) {
        let n = rng.int_in(8, 32) as usize;
        let seed = rng.next_u64();
        let spec = WorkloadSpec {
            num_requests: n,
            input: LengthDist::Uniform { lo: 64, hi: 768 },
            output: LengthDist::Uniform { lo: 16, hi: 128 },
            arrival: ArrivalPattern::Poisson { rate_rps: 3.0 },
            sharing: PrefixSharing::None,
            slo: SloSpec::None,
            seed,
        };
        let replicas = rng.int_in(2, 4) as usize;
        let plan = FaultPlan::seeded(rng.next_u64(), replicas, 30.0, 6);
        let preemption = match rng.int_in(0, 1) {
            0 => PreemptionMode::Recompute,
            _ => PreemptionMode::Swap,
        };
        let opts = SchedOptions { preemption, ..SchedOptions::default() };
        let routing: Box<dyn RoutingPolicy> = match rng.int_in(0, 1) {
            0 => Box::new(RoundRobin::default()),
            _ => Box::new(LeastOutstanding),
        };
        let report = Cluster::new(engine(), replicas, routing)
            .serve_paged_faulty(&spec, || Box::new(Fcfs), Reservation::OnDemand, opts, &plan)
            .expect("workload must be servable");
        // The partition: shed ∪ finished == generated ids, disjointly —
        // a crash may move work, never destroy it.
        assert_eq!(
            report.completed + report.shed, n,
            "finished ∪ shed must cover the workload under faults"
        );
        let mut seen = std::collections::HashSet::new();
        for id in &report.shed_ids {
            assert!(seen.insert(id.0), "request {} shed twice", id.0);
        }
        for rep in &report.per_replica {
            // The fault-aware ledger: work routed here either finished
            // here or was requeued away by a crash — nothing vanishes.
            assert_eq!(
                rep.completed + rep.requeued_away, rep.routed,
                "replica ledger must balance: completed + requeued_away == routed"
            );
            assert_eq!(rep.completed, rep.finished.len());
            for id in &rep.finished {
                assert!(
                    seen.insert(id.0),
                    "request {} finished twice or was both shed and finished",
                    id.0
                );
            }
        }
        assert_eq!(seen.len(), n, "a request was lost under faults");
        for id in 0..n as u64 {
            assert!(seen.contains(&id), "request {} vanished", id);
        }
        // Every requeue event left exactly one replica and was counted
        // exactly once fleet-wide.
        let away: usize = report.per_replica.iter().map(|r| r.requeued_away).sum();
        assert_eq!(away, report.requeued, "requeue accounting must balance fleet-wide");
        if plan.is_empty() {
            assert_eq!(report.requeued, 0);
            assert_eq!(report.lost_prefill_tokens, 0);
        }
    }
}

props! {
    /// Every routing policy conserves requests across replicas: each
    /// generated request finishes exactly once, on exactly one replica,
    /// under random replica counts, sharing structures, arrivals and
    /// scheduling policies.
    fn prop_routing_conserves_requests_across_replicas(rng, cases = 12) {
        let n = rng.int_in(4, 24) as usize;
        let seed = rng.next_u64();
        let arrival = match rng.int_in(0, 2) {
            0 => ArrivalPattern::Batch,
            1 => ArrivalPattern::Uniform { rate_rps: 2.0 },
            _ => ArrivalPattern::Poisson { rate_rps: 2.0 },
        };
        let sharing = match rng.int_in(0, 2) {
            0 => PrefixSharing::None,
            _ => PrefixSharing::Groups { groups: 3, prefix_len: 512 },
        };
        let spec = WorkloadSpec {
            num_requests: n,
            input: LengthDist::Uniform { lo: 64, hi: 768 },
            output: LengthDist::Uniform { lo: 16, hi: 128 },
            arrival,
            sharing,
            slo: SloSpec::None,
            seed,
        };
        let replicas = rng.int_in(1, 4) as usize;
        let routing: Box<dyn RoutingPolicy> = match rng.int_in(0, 2) {
            0 => Box::new(RoundRobin::default()),
            1 => Box::new(LeastOutstanding),
            _ => Box::new(PrefixAffinity::default()),
        };
        let share = matches!(sharing, PrefixSharing::Groups { .. }) && rng.int_in(0, 1) == 1;
        let opts = SchedOptions {
            share_prefixes: share,
            chunk_tokens: match rng.int_in(0, 1) {
                0 => None,
                _ => Some(256),
            },
            ..SchedOptions::default()
        };
        let sched_policy: fn() -> Box<dyn SchedulingPolicy> = match rng.int_in(0, 1) {
            0 => || Box::new(Fcfs),
            _ => || Box::new(MemoryAware { headroom: 0.25 }),
        };
        let report = Cluster::new(engine(), replicas, routing)
            .serve_paged(&spec, sched_policy, Reservation::OnDemand, opts)
            .expect("workload must be servable");
        assert_eq!(report.completed, n, "every request finishes");
        assert_eq!(report.replicas, replicas);
        // Exactly-once across the fleet: the union of per-replica finished
        // ids is the workload's id set with no duplicates.
        let mut seen = std::collections::HashSet::new();
        for rep in &report.per_replica {
            assert_eq!(rep.completed, rep.routed, "a replica lost a routed request");
            assert_eq!(rep.completed, rep.finished.len());
            for id in &rep.finished {
                assert!(seen.insert(id.0), "request {} finished on two replicas", id.0);
            }
        }
        assert_eq!(seen.len(), n);
        for id in 0..n as u64 {
            assert!(seen.contains(&id), "request {} never finished", id);
        }
        // Token conservation: aggregate generated == Σ spec outputs.
        let expected: usize = spec.sample().iter().map(|r| r.output_len).sum();
        assert_eq!(report.generated_tokens, expected);
    }

    /// Admission control partitions the workload exactly: every generated
    /// request is either shed or finished — never both, never neither —
    /// each finished request finishes exactly once on exactly one replica,
    /// and admit-all sheds nothing, under random heterogeneous fleets,
    /// SLO mixes, routings and admission policies.
    fn prop_admission_partitions_workload_exactly(rng, cases = 10) {
        let n = rng.int_in(4, 24) as usize;
        let seed = rng.next_u64();
        let arrival = match rng.int_in(0, 1) {
            0 => ArrivalPattern::Batch,
            _ => ArrivalPattern::Poisson { rate_rps: 3.0 },
        };
        // Deadlines from generously loose down to unmeetably tight, so
        // deadline admission actually sheds in some cases.
        let tight = 0.001 * rng.int_in(1, 1000) as f64;
        let spec = WorkloadSpec {
            num_requests: n,
            input: LengthDist::Uniform { lo: 64, hi: 768 },
            output: LengthDist::Uniform { lo: 16, hi: 128 },
            arrival,
            sharing: PrefixSharing::None,
            slo: SloSpec::Cycle(vec![
                Slo::interactive(tight, 10.0 * tight),
                Slo::standard(30.0, 120.0),
                Slo::best_effort(),
            ]),
            seed,
        };
        // A random heterogeneous fleet of 1-4 replicas.
        let fleet: Vec<ServingEngine> = (0..rng.int_in(1, 4))
            .map(|_| if rng.int_in(0, 1) == 0 { engine() } else { l40s_engine() })
            .collect();
        let routing: Box<dyn RoutingPolicy> = match rng.int_in(0, 1) {
            0 => Box::new(RoundRobin::default()),
            _ => Box::new(LeastOutstanding),
        };
        let admit_all = rng.int_in(0, 2) == 0;
        let admission: Box<dyn AdmissionPolicy> = if admit_all {
            Box::new(AdmitAll)
        } else if rng.int_in(0, 1) == 0 {
            Box::new(DeadlineFeasible)
        } else {
            Box::new(PriorityShed { queue_budget_s: 0.01 * rng.int_in(1, 200) as f64 })
        };
        let report = Cluster::heterogeneous(fleet, routing)
            .with_admission(admission)
            .serve_paged(
                &spec,
                || Box::new(Fcfs),
                Reservation::OnDemand,
                SchedOptions::default(),
            )
            .expect("workload must be servable");
        // The partition: shed ∪ finished == generated ids, disjointly.
        assert_eq!(report.completed + report.shed, n, "admitted ∪ shed must cover the workload");
        assert_eq!(report.shed_ids.len(), report.shed);
        assert_eq!(report.shed_by_tier.iter().sum::<usize>(), report.shed);
        let mut seen = std::collections::HashSet::new();
        for id in &report.shed_ids {
            assert!(seen.insert(id.0), "request {} shed twice", id.0);
        }
        for rep in &report.per_replica {
            assert_eq!(rep.completed, rep.routed, "a replica lost a routed request");
            for id in &rep.finished {
                assert!(
                    seen.insert(id.0),
                    "request {} both shed and finished, or finished twice",
                    id.0
                );
            }
        }
        assert_eq!(seen.len(), n, "a request was neither shed nor finished");
        for id in 0..n as u64 {
            assert!(seen.contains(&id), "request {} vanished", id);
        }
        if admit_all {
            assert_eq!(report.shed, 0, "admit-all must shed nothing");
            assert!(report.shed_ids.is_empty());
        }
        // Shed tokens are really never generated.
        let by_id: std::collections::HashMap<u64, usize> =
            spec.sample().iter().map(|r| (r.id.0, r.output_len)).collect();
        let expected: usize = by_id
            .iter()
            .filter(|(id, _)| !report.shed_ids.iter().any(|s| s.0 == **id))
            .map(|(_, out)| out)
            .sum();
        assert_eq!(report.generated_tokens, expected);
    }
}
