//! The paper's headline claims, checked end to end across crates.

use qserve::core::progressive::ProgressiveWeight;
use qserve::gpusim::attention_model::{attention_decode_latency, AttentionKernel, AttentionShape};
use qserve::gpusim::gemm_model::{gemm_latency, GemmConfig, GemmShape};
use qserve::gpusim::roofline::{crossover_batch, GemmPrecision};
use qserve::gpusim::GpuSpec;
use qserve::model::ModelConfig;
use qserve::serve::engine::Workload;
use qserve::serve::{ServingEngine, SystemConfig};
use qserve::tensor::{prop, props, Matrix};

/// §3.1: the W4A16/W8A8 roofline crossover sits near m = 78 on A100.
#[test]
fn claim_roofline_crossover() {
    let m = crossover_batch(
        &GpuSpec::a100(),
        GemmPrecision::Int4Fp16,
        GemmPrecision::Int8Int8,
        4096.0,
        4096.0,
    )
    .expect("must cross");
    assert!((70..=90).contains(&m), "crossover {}", m);
}

/// Abstract: "existing INT4 quantization methods suffer from significant
/// runtime overhead (20-90%) when dequantizing either weights or partial
/// sums" — while QServe's stays small.
#[test]
fn claim_dequant_overhead_band() {
    let gpu = GpuSpec::a100();
    let shape = GemmShape { m: 128, n: 4096, k: 4096 };
    let atom = gemm_latency(&gpu, GemmConfig::AtomW4A4, shape).dequant_overhead();
    let w4a16 = gemm_latency(&gpu, GemmConfig::TrtW4A16, shape).dequant_overhead();
    let ours = gemm_latency(&gpu, GemmConfig::QServeW4A8PerGroup, shape).dequant_overhead();
    assert!(atom > 0.2 && atom < 0.95, "atom {}", atom);
    assert!(w4a16 > 0.02, "w4a16 {}", w4a16);
    assert!(ours < w4a16 && ours < atom, "ours {}", ours);
}

/// Table 1's two-sided result: naive KV4 loses to KV8 on A100 but wins on
/// L40S; QServe's KV4 wins on both.
#[test]
fn claim_kv4_attention_gpu_dependence() {
    let shape = AttentionShape {
        batch: 64,
        seq_len: 1024,
        query_heads: 32,
        kv_heads: 32,
        head_dim: 128,
    };
    for (gpu, naive_should_win) in [(GpuSpec::a100(), false), (GpuSpec::l40s(), true)] {
        let kv8 = attention_decode_latency(&gpu, AttentionKernel::Kv8Static, shape).total_s;
        let naive = attention_decode_latency(&gpu, AttentionKernel::Kv4Naive, shape).total_s;
        let ours = attention_decode_latency(&gpu, AttentionKernel::Kv4QServe, shape).total_s;
        assert_eq!(
            naive < kv8,
            naive_should_win,
            "{}: naive {} vs kv8 {}",
            gpu.name,
            naive,
            kv8
        );
        assert!(ours < kv8, "{}: ours must always win", gpu.name);
    }
}

/// Abstract: QServe improves max serving throughput over TensorRT-LLM on
/// both GPUs, with the larger gains on L40S.
#[test]
fn claim_end_to_end_speedups() {
    let wl = Workload::paper(48);
    let best_trt = |gpu: &GpuSpec, m: &ModelConfig| -> f64 {
        [SystemConfig::TrtFp16, SystemConfig::TrtW4A16, SystemConfig::TrtW8A8]
            .into_iter()
            .filter_map(|s| {
                ServingEngine::new(gpu.clone(), m.clone(), s)
                    .ok()?
                    .max_throughput(&wl)
                    .ok()
            })
            .map(|r| r.throughput_tps)
            .fold(0.0, f64::max)
    };
    let mut a100_speedups = Vec::new();
    let mut l40s_speedups = Vec::new();
    // MHA models, where the L40S memory squeeze makes KV4 decisive. (For
    // GQA/70B models our cost model yields comparable gains on both GPUs;
    // see EXPERIMENTS.md.)
    for m in [ModelConfig::llama2_7b(), ModelConfig::llama2_13b()] {
        for (gpu, sys, acc) in [
            (GpuSpec::a100(), SystemConfig::QServePerChannel, &mut a100_speedups),
            (GpuSpec::l40s(), SystemConfig::QServePerGroup, &mut l40s_speedups),
        ] {
            let q = ServingEngine::new(gpu.clone(), m.clone(), sys)
                .unwrap()
                .max_throughput(&wl)
                .unwrap()
                .throughput_tps;
            let t = best_trt(&gpu, &m);
            let s = q / t;
            assert!(s > 1.0, "{} {}: speedup {} must exceed 1", gpu.name, m.name, s);
            acc.push(s);
        }
    }
    let gm = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    assert!(
        gm(&l40s_speedups) > gm(&a100_speedups),
        "L40S gains {:?} should exceed A100 gains {:?}",
        l40s_speedups,
        a100_speedups
    );
}

/// §6.3: Qwen1.5-72B — the largest relative win (2.4× A100, 3.5× L40S in
/// the paper) because W8A8 barely fits while W4A8KV4 runs comfortably.
#[test]
fn claim_72b_dramatic_win() {
    let wl = Workload::paper(16);
    let m = ModelConfig::qwen15_72b();
    let q = ServingEngine::new(GpuSpec::a100(), m.clone(), SystemConfig::QServePerChannel)
        .unwrap()
        .max_throughput(&wl)
        .unwrap()
        .throughput_tps;
    let w8 = ServingEngine::new(GpuSpec::a100(), m, SystemConfig::TrtW8A8)
        .unwrap()
        .max_throughput(&wl)
        .unwrap()
        .throughput_tps;
    assert!(q / w8 > 2.0, "72B speedup over W8A8 is {}", q / w8);
}

props! {
    /// §4.1 protective range, end to end: for arbitrary weight tensors the
    /// progressive intermediates never leave the INT8 range — the invariant
    /// that licenses register-level parallelism in the kernel.
    fn prop_protective_range_invariant(rng, cases = 32) {
        let vals = prop::vec_f32(rng, -4.0, 4.0, 128);
        let group = rng.choose(&[16usize, 32, 64]);
        let w = Matrix::from_vec(2, 64, vals);
        let pw = ProgressiveWeight::quantize(&w, group.min(64));
        assert!(pw.max_intermediate_abs() <= 127);
    }

    /// Reconstruction error of progressive quantization is bounded by the
    /// worst-case two-level step: s⁽⁰⁾/2 for level 0, plus per level 1 a
    /// rounding half-step s⁽¹⁾/2 *and* the clipping slack from s⁽¹⁾ being
    /// rounded down — a group range of up to 15·s⁽¹⁾ + 7.5 is squeezed into
    /// 15 codes, and with zero-point rounding the whole ≤ 7.5 + s⁽¹⁾/2
    /// shortfall can land on one endpoint.
    fn prop_progressive_error_bound(rng, cases = 32) {
        let w = rng.heavy_tailed(4, 64, 0.1, 0.05, 6.0);
        let pw = ProgressiveWeight::quantize(&w, 16);
        let back = pw.dequantize();
        let groups_per_row = 64 / 16;
        for i in 0..4 {
            let s0 = pw.channel_scales()[i];
            for j in 0..64 {
                let s1 = pw.group_params()[i * groups_per_row + j / 16].scale;
                let bound = s0 * (f32::from(s1) + 8.0) + 1e-5;
                let err = (w[(i, j)] - back[(i, j)]).abs();
                assert!(err <= bound, "err {} > bound {} at ({}, {})", err, bound, i, j);
            }
        }
    }
}
