//! Cross-crate consistency: the QoQ algorithm's deployed artifacts must run
//! bit-exactly through the emulated GPU kernels.

use qserve::core::kv_quant::{quantize_token_row, KvPrecision};
use qserve::core::pipeline::{quantize_block, DeployedWeight, QoqConfig, WeightGranularity};
use qserve::core::progressive::ProgressiveWeight;
use qserve::kernels::attention::{decode_attention_fp16, QuantizedKvHead};
use qserve::kernels::reorder::ReorderedWeight;
use qserve::kernels::{gemm_w4a8_per_channel, gemm_w4a8_per_group, quantize_activations_int8};
use qserve::model::synth::SyntheticModel;
use qserve::tensor::rng::TensorRng;
use qserve::tensor::Matrix;

/// Progressive weights → compute-aware reorder → round trip → per-group GEMM:
/// the storage transformation must not change a single output bit.
#[test]
fn reordered_storage_preserves_gemm_bits() {
    let mut rng = TensorRng::seed(1);
    let w = rng.gaussian(32, 128, 0.05);
    let pw = ProgressiveWeight::quantize(&w, 32);
    let x = rng.gaussian(4, 128, 1.0);
    let qx = quantize_activations_int8(&x);
    let y_direct = gemm_w4a8_per_group(&qx, &pw);

    // Reorder into compute order and back — the kernel consumes the same
    // codes either way.
    let reordered = ReorderedWeight::from_codes(pw.codes(), 32, 128);
    assert_eq!(reordered.to_codes(), pw.codes());
    let y_after = gemm_w4a8_per_group(&qx, &pw);
    assert_eq!(y_direct.as_slice(), y_after.as_slice());
}

/// The pipeline's deployed per-group weights must produce, through the
/// emulated kernel, exactly the dequantize-then-matmul result of the same
/// deployed form.
#[test]
fn pipeline_deployed_weights_match_kernel_output() {
    let model = SyntheticModel::small(1);
    let mut rng = TensorRng::seed(2);
    let calib = rng.gaussian(32, model.config.hidden, 1.0);
    let cfg = QoqConfig {
        weight_granularity: WeightGranularity::PerGroup(32),
        ..QoqConfig::w4a8kv4_g128()
    };
    let qb = quantize_block(&model.blocks[0], &calib, &cfg);
    let x = rng.gaussian(4, model.config.hidden, 1.0);
    let qx = quantize_activations_int8(&x);
    for (name, dep) in &qb.deployed {
        let DeployedWeight::Progressive(pw) = dep else {
            panic!("expected progressive weights");
        };
        if pw.k() != model.config.hidden || pw.k() % 32 != 0 {
            continue; // down_proj consumes the FFN width
        }
        let y_kernel = gemm_w4a8_per_group(&qx, pw);
        // Integer-exact reference through the intermediate INT8 tensor.
        let inter = pw.intermediate_int8();
        for i in 0..4 {
            for j in 0..pw.n() {
                let mut acc = 0i64;
                for p in 0..pw.k() {
                    acc += i64::from(qx.codes[i * pw.k() + p]) * i64::from(inter[j * pw.k() + p]);
                }
                let expect = acc as f32 * qx.scales[i] * pw.channel_scales()[j];
                assert_eq!(y_kernel[(i, j)], expect, "{} ({}, {})", name, i, j);
            }
        }
    }
}

/// Per-channel deployment path: epilogue-fused zero points, bit-exact.
#[test]
fn per_channel_deployment_bit_exact() {
    let model = SyntheticModel::small(1);
    let mut rng = TensorRng::seed(3);
    let calib = rng.gaussian(16, model.config.hidden, 1.0);
    let qb = quantize_block(&model.blocks[0], &calib, &QoqConfig::w4a8kv4_per_channel());
    let x = rng.gaussian(2, model.config.hidden, 1.0);
    let qx = quantize_activations_int8(&x);
    let (_, dep) = &qb.deployed[0];
    let DeployedWeight::PerChannel(pc) = dep else {
        panic!("expected per-channel weights");
    };
    let y = gemm_w4a8_per_channel(&qx, pc);
    for i in 0..2 {
        for j in 0..pc.n() {
            let mut acc = 0i64;
            for p in 0..pc.k() {
                let qw = i64::from(pc.codes()[j * pc.k() + p]) - i64::from(pc.zeros()[j]);
                acc += i64::from(qx.codes[i * pc.k() + p]) * qw;
            }
            let expect = acc as f32 * qx.scales[i] * pc.scales()[j];
            assert_eq!(y[(i, j)], expect);
        }
    }
}

/// KV rows quantized by `qserve-core` must flow through the attention kernel
/// and land near the unquantized reference.
#[test]
fn kv_quant_to_attention_kernel_path() {
    let mut rng = TensorRng::seed(4);
    let d = 32;
    let seq = 48;
    let keys = rng.gaussian(seq, d, 1.0);
    let values = rng.gaussian(seq, d, 1.0);
    let mut head = QuantizedKvHead::new(KvPrecision::Int4);
    for t in 0..seq {
        head.keys.push(quantize_token_row(keys.row(t), d, KvPrecision::Int4).remove(0));
        head.values.push(quantize_token_row(values.row(t), d, KvPrecision::Int4).remove(0));
    }
    let q: Vec<f32> = (0..d).map(|_| rng.normal(1.0)).collect();
    let out = decode_attention_fp16(&q, &head);
    let reference = qserve::tensor::ops::attention_single(&q, &keys, &values);
    for (a, b) in out.iter().zip(&reference) {
        assert!((a - b).abs() < 0.2, "{} vs {}", a, b);
    }
}

/// SmoothAttention folded into W_Q/W_K must leave the *kernel-computed*
/// attention scores unchanged (pre-RoPE), end to end.
#[test]
fn smooth_attention_fold_invisible_to_scores() {
    use qserve::core::smooth_attention::SmoothAttentionScales;
    let mut rng = TensorRng::seed(5);
    let hidden = 32;
    let d = 16;
    let x = rng.gaussian(6, hidden, 1.0);
    let wq = rng.gaussian(d, hidden, 0.2);
    let wk = rng.gaussian(d, hidden, 0.2);
    let k_cal = rng.with_outlier_channels(64, d, 0.5, &[3], 10.0);
    let s = SmoothAttentionScales::from_keys(&k_cal, d, 0.5);
    let scores0 = x.matmul_nt(&wq).matmul_nt(&x.matmul_nt(&wk));
    let scores1 = x
        .matmul_nt(&s.fold_into_wq(&wq))
        .matmul_nt(&x.matmul_nt(&s.fold_into_wk(&wk)));
    for (a, b) in scores0.as_slice().iter().zip(scores1.as_slice()) {
        assert!((a - b).abs() < 1e-3 * a.abs().max(1.0));
    }
}

/// Full fake-quant block applied to a forward pass changes outputs only
/// within the expected quantization noise band.
#[test]
fn fake_quant_block_bounded_damage() {
    use qserve::model::forward::block_forward;
    let model = SyntheticModel::small(1);
    let mut rng = TensorRng::seed(6);
    let calib = rng.gaussian(32, model.config.hidden, 1.0);
    let cfg = QoqConfig {
        weight_granularity: WeightGranularity::PerGroup(32),
        ..QoqConfig::w4a8kv4_g128()
    };
    let qb = quantize_block(&model.blocks[0], &calib, &cfg);
    let x = rng.gaussian(8, model.config.hidden, 1.0);
    let norms = vec![1.0f32; model.config.hidden];
    let y0 = block_forward(&x, &model.blocks[0], &norms, &norms, 10000.0);
    let y1 = block_forward(&x, &qb.fake, &norms, &norms, 10000.0);
    let rel = qserve::tensor::stats::relative_error(&y0, &y1);
    assert!(rel < 0.2, "block-level damage {} too large", rel);
    assert!(rel > 0.0, "quantization must not be a no-op");
    assert_ne!(y0, Matrix::zeros(8, model.config.hidden));
}
